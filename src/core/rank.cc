#include "core/rank.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace dqr::core {

RankModel::RankModel(std::vector<RankSpec> specs) {
  specs_.reserve(specs.size());
  double given_weight = 0.0;
  int defaulted = 0;
  for (const RankSpec& spec : specs) {
    DQR_CHECK(!spec.bounds.empty());
    DQR_CHECK(!spec.value_range.empty());
    Effective eff;
    eff.constrainable = spec.constrainable;
    eff.maximize = spec.maximize;
    // Close half-open bounds with the value-range endpoints (§3.2).
    eff.bounds = Interval(
        std::isfinite(spec.bounds.lo) ? spec.bounds.lo : spec.value_range.lo,
        std::isfinite(spec.bounds.hi) ? spec.bounds.hi
                                      : spec.value_range.hi);
    if (spec.constrainable) {
      ++num_constrainable_;
      if (spec.weight >= 0.0) {
        given_weight += spec.weight;
      } else {
        ++defaulted;
      }
    }
    eff.weight = spec.weight;
    specs_.push_back(eff);
  }
  // Normalize: explicit weights are scaled so the total (with defaulted
  // weights sharing the remainder equally) sums to 1.
  const double remainder = std::max(0.0, 1.0 - given_weight);
  const double default_w = defaulted > 0
                               ? remainder / defaulted
                               : 0.0;
  double total = 0.0;
  for (Effective& eff : specs_) {
    if (!eff.constrainable) {
      eff.weight = 0.0;
      continue;
    }
    if (eff.weight < 0.0) eff.weight = default_w;
    total += eff.weight;
  }
  if (total > 0.0) {
    for (Effective& eff : specs_) eff.weight /= total;
  }
}

double RankModel::RankComponent(int c, double t) const {
  const Effective& eff = specs_[static_cast<size_t>(c)];
  const double a = eff.bounds.lo;
  const double b = eff.bounds.hi;
  const double span = b - a;
  if (span <= 0.0) return 0.0;  // degenerate bounds: every value is best
  const double clamped = std::clamp(t, a, b);
  return eff.maximize ? (b - clamped) / span : (clamped - a) / span;
}

double RankModel::Rank(const std::vector<double>& values) const {
  DQR_CHECK(values.size() == specs_.size());
  double badness = 0.0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (!specs_[c].constrainable) continue;
    badness +=
        specs_[c].weight * RankComponent(static_cast<int>(c), values[c]);
  }
  return 1.0 - badness;
}

double RankModel::BestRank(const std::vector<Interval>& estimates) const {
  DQR_CHECK(estimates.size() == specs_.size());
  double badness = 0.0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    const Effective& eff = specs_[c];
    if (!eff.constrainable) continue;
    const Interval feasible = estimates[c].Intersect(eff.bounds);
    if (feasible.empty()) {
      // No valid solution exists in the sub-tree.
      return -std::numeric_limits<double>::infinity();
    }
    // The best (smallest) badness is at the preferred end of the feasible
    // interval.
    const double best_t = eff.maximize ? feasible.hi : feasible.lo;
    badness += eff.weight * RankComponent(static_cast<int>(c), best_t);
  }
  return 1.0 - badness;
}

std::vector<double> RankModel::OrientForSkyline(
    const std::vector<double>& values) const {
  DQR_CHECK(values.size() == specs_.size());
  std::vector<double> out;
  out.reserve(static_cast<size_t>(num_constrainable_));
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (!specs_[c].constrainable) continue;
    out.push_back(specs_[c].maximize ? values[c] : -values[c]);
  }
  return out;
}

std::vector<double> RankModel::BestCornerForSkyline(
    const std::vector<Interval>& estimates) const {
  DQR_CHECK(estimates.size() == specs_.size());
  std::vector<double> out;
  out.reserve(static_cast<size_t>(num_constrainable_));
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (!specs_[c].constrainable) continue;
    out.push_back(specs_[c].maximize ? estimates[c].hi : -estimates[c].lo);
  }
  return out;
}

}  // namespace dqr::core
