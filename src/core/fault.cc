#include "core/fault.h"

#include "common/check.h"
#include "common/rng.h"

namespace dqr::core {

bool FaultPlan::HasCrash() const {
  for (const FaultEvent& e : events) {
    if (e.action == FaultAction::kCrash) return true;
  }
  return false;
}

FaultPlan& FaultPlan::Crash(int instance, FaultSite site, int64_t at_index) {
  events.push_back(
      FaultEvent{instance, site, at_index, FaultAction::kCrash, 0});
  return *this;
}

FaultPlan& FaultPlan::Stall(int instance, FaultSite site, int64_t at_index,
                            int64_t delay_us) {
  events.push_back(
      FaultEvent{instance, site, at_index, FaultAction::kStall, delay_us});
  return *this;
}

FaultPlan& FaultPlan::Slow(int instance, FaultSite site, int64_t from_index,
                           int64_t delay_us) {
  events.push_back(
      FaultEvent{instance, site, from_index, FaultAction::kSlow, delay_us});
  return *this;
}

FaultPlan MakeRandomCrashPlan(uint64_t seed, int num_instances, int crashes,
                              int64_t max_index) {
  DQR_CHECK(num_instances > 0 && max_index >= 0);
  Rng rng(seed);
  FaultPlan plan;
  for (int i = 0; i < crashes; ++i) {
    const int instance =
        static_cast<int>(rng.UniformInt(0, num_instances - 1));
    const auto site =
        static_cast<FaultSite>(rng.UniformInt(0, kNumFaultSites - 1));
    plan.Crash(instance, site, rng.UniformInt(0, max_index));
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_instances) {
  DQR_CHECK(num_instances > 0);
  sites_.reserve(static_cast<size_t>(num_instances) * kNumFaultSites);
  for (int i = 0; i < num_instances * kNumFaultSites; ++i) {
    sites_.push_back(std::make_unique<SiteState>());
  }
  for (const FaultEvent& e : plan.events) {
    DQR_CHECK(e.at_index >= 0 && e.delay_us >= 0);
    if (e.instance < 0 || e.instance >= num_instances) continue;
    At(e.instance, e.site).events.push_back(e);
  }
}

std::optional<FaultDecision> FaultInjector::OnEvent(int instance,
                                                    FaultSite site) {
  SiteState& state = At(instance, site);
  if (state.events.empty()) {
    return std::nullopt;  // keep the no-fault path counter-only
  }
  const int64_t index =
      state.counter.fetch_add(1, std::memory_order_relaxed);
  std::optional<FaultDecision> decision;
  for (const FaultEvent& e : state.events) {
    const bool match = e.action == FaultAction::kSlow
                           ? index >= e.at_index
                           : index == e.at_index;
    if (!match) continue;
    if (e.action == FaultAction::kCrash) {
      return FaultDecision{FaultAction::kCrash, 0};
    }
    if (!decision.has_value()) {
      decision = FaultDecision{e.action, e.delay_us};
    } else {
      decision->delay_us += e.delay_us;  // overlapping sleeps accumulate
    }
  }
  return decision;
}

}  // namespace dqr::core
