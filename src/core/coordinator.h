#ifndef DQR_CORE_COORDINATOR_H_
#define DQR_CORE_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/options.h"
#include "core/rank.h"
#include "core/tracker.h"
#include "cp/domain.h"

namespace dqr::core {

// A scalar whose published updates become visible to readers only after a
// configurable delay — the stand-in for Searchlight's asynchronous MRP/MRK
// broadcasts between cluster instances ("MRP is (asynchronously) updated
// for all Solvers/Validators", §4.1). Delay 0 uses a lock-free fast path.
//
// Delayed mode is also contention-free in the common case: readers check
// an atomic "when is the oldest pending update due" timestamp and take the
// mutex only when a flip is actually due. The flip itself happens on the
// first Read() at or after the due time (reads pull updates visible; an
// idle Publish side never needs to push them), so a value published before
// instant t is guaranteed visible to every Read() from t + delay on.
class DelayedBroadcast {
 public:
  DelayedBroadcast(double initial, int64_t delay_us)
      : delay_us_(delay_us), visible_(initial) {}

  void Publish(double value);
  double Read() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point at;
    double value;
  };

  // Sentinel for "nothing pending": any clock reading compares below it.
  static constexpr int64_t kIdle = std::numeric_limits<int64_t>::max();

  static int64_t ToNs(Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  const int64_t delay_us_;
  mutable std::atomic<double> visible_;
  // Due time (steady-clock ns) of pending_.front(), kIdle when empty. The
  // hot-path read gate: while now < next_due_ns_ nothing can flip and
  // Read() is two atomic loads.
  mutable std::atomic<int64_t> next_due_ns_{kIdle};
  mutable std::mutex mu_;          // guards pending_ (delayed mode only)
  mutable std::deque<Pending> pending_;
};

// Shared per-query state across all simulated instances: the global result
// tracker, the (possibly delayed) MRP/MRK views, the shard pool instances
// steal main-search work from, the end-of-main-search barrier that gates
// the relaxation decision, cancellation, and first-result timing.
class Coordinator {
 public:
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us);
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us,
              ResultTracker::Diversity diversity);

  ResultTracker& tracker() { return tracker_; }
  const ResultTracker& tracker() const { return tracker_; }

  // Views of MRP/MRK as an instance would see them over the interconnect.
  double CurrentMrp() const { return mrp_.Read(); }
  double CurrentMrk() const { return mrk_.Read(); }

  // Phase reads go straight to the tracker: a stale "collecting" view only
  // records extra fails, never loses results.
  QueryPhase CurrentPhase() const { return tracker_.phase(); }

  // True iff the sub-tree with the given best skyline corner is dominated
  // by the current skyline (skyline constraining's dynamic check).
  bool SkylineDominatesBox(const std::vector<double>& corner) const;

  // Called by validators after every tracker insertion to refresh the
  // broadcast values.
  void PublishProgress();

  // Records the first confirmed result's timestamp (idempotent).
  void NoteResult();
  double first_result_s() const { return first_result_s_.load(); }

  // --- work-stealing shard pool ---
  // Seeds the pool with the main search's variable-0 shards; call once
  // before the instances start. Shards are handed out lowest-first.
  void SeedShards(std::vector<cp::IntDomain> shards);
  // Pulls the next shard; nullopt once the pool is drained or the query is
  // cancelled. Never blocks.
  std::optional<cp::IntDomain> PopShard();
  int64_t shards_seeded() const { return shards_seeded_; }

  // End-of-main-search barrier: each instance arrives once after the shard
  // pool handed it nullopt and its validator drained; the call returns
  // when the pool is drained AND every instance is quiescent (arrived).
  void ArriveMainSearchDone();

  const std::atomic<bool>& cancel_flag() const { return cancel_; }
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }

 private:
  const int num_instances_;
  ResultTracker tracker_;
  // Skyline dominance checks must see the tracker's skyline; they are
  // routed through ResultTracker (under its lock).
  DelayedBroadcast mrp_;
  DelayedBroadcast mrk_;
  std::atomic<bool> cancel_{false};
  std::atomic<double> first_result_s_{-1.0};
  std::atomic<bool> have_first_{false};
  Stopwatch clock_;

  std::mutex shard_mu_;
  std::deque<cp::IntDomain> shards_;
  int64_t shards_seeded_ = 0;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_COORDINATOR_H_
