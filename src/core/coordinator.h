#ifndef DQR_CORE_COORDINATOR_H_
#define DQR_CORE_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/stopwatch.h"
#include "core/options.h"
#include "core/rank.h"
#include "core/tracker.h"

namespace dqr::core {

// A scalar whose published updates become visible to readers only after a
// configurable delay — the stand-in for Searchlight's asynchronous MRP/MRK
// broadcasts between cluster instances ("MRP is (asynchronously) updated
// for all Solvers/Validators", §4.1). Delay 0 uses a lock-free fast path.
class DelayedBroadcast {
 public:
  DelayedBroadcast(double initial, int64_t delay_us)
      : delay_us_(delay_us), visible_(initial) {}

  void Publish(double value);
  double Read() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point at;
    double value;
  };

  const int64_t delay_us_;
  mutable std::atomic<double> visible_;
  mutable std::mutex mu_;          // guards pending_ (delayed mode only)
  mutable std::deque<Pending> pending_;
};

// Shared per-query state across all simulated instances: the global result
// tracker, the (possibly delayed) MRP/MRK views, the end-of-main-search
// barrier that gates the relaxation decision, cancellation, and
// first-result timing.
class Coordinator {
 public:
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us);
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us,
              ResultTracker::Diversity diversity);

  ResultTracker& tracker() { return tracker_; }
  const ResultTracker& tracker() const { return tracker_; }

  // Views of MRP/MRK as an instance would see them over the interconnect.
  double CurrentMrp() const { return mrp_.Read(); }
  double CurrentMrk() const { return mrk_.Read(); }

  // Phase reads go straight to the tracker: a stale "collecting" view only
  // records extra fails, never loses results.
  QueryPhase CurrentPhase() const { return tracker_.phase(); }

  // True iff the sub-tree with the given best skyline corner is dominated
  // by the current skyline (skyline constraining's dynamic check).
  bool SkylineDominatesBox(const std::vector<double>& corner) const;

  // Called by validators after every tracker insertion to refresh the
  // broadcast values.
  void PublishProgress();

  // Records the first confirmed result's timestamp (idempotent).
  void NoteResult();
  double first_result_s() const { return first_result_s_.load(); }

  // End-of-main-search barrier: each instance arrives once after draining
  // its validator; the call returns when every instance has arrived.
  void ArriveMainSearchDone();

  const std::atomic<bool>& cancel_flag() const { return cancel_; }
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }

 private:
  const int num_instances_;
  ResultTracker tracker_;
  // Skyline dominance checks must see the tracker's skyline; they are
  // routed through ResultTracker (under its lock).
  DelayedBroadcast mrp_;
  DelayedBroadcast mrk_;
  std::atomic<bool> cancel_{false};
  std::atomic<double> first_result_s_{-1.0};
  std::atomic<bool> have_first_{false};
  Stopwatch clock_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_COORDINATOR_H_
