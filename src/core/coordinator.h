#ifndef DQR_CORE_COORDINATOR_H_
#define DQR_CORE_COORDINATOR_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/options.h"
#include "core/rank.h"
#include "core/tracker.h"
#include "cp/domain.h"
#include "searchlight/candidate.h"

namespace dqr::core {

class FailRegistry;

// A scalar whose published updates become visible to readers only after a
// configurable delay — the stand-in for Searchlight's asynchronous MRP/MRK
// broadcasts between cluster instances ("MRP is (asynchronously) updated
// for all Solvers/Validators", §4.1). Delay 0 uses a lock-free fast path.
//
// Delayed mode is also contention-free in the common case: readers check
// an atomic "when is the oldest pending update due" timestamp and take the
// mutex only when a flip is actually due. The flip itself happens on the
// first Read() at or after the due time (reads pull updates visible; an
// idle Publish side never needs to push them), so a value published before
// instant t is guaranteed visible to every Read() from t + delay on.
class DelayedBroadcast {
 public:
  DelayedBroadcast(double initial, int64_t delay_us)
      : delay_us_(delay_us), visible_(initial) {}

  void Publish(double value);
  double Read() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Clock::time_point at;
    double value;
  };

  // Sentinel for "nothing pending": any clock reading compares below it.
  static constexpr int64_t kIdle = std::numeric_limits<int64_t>::max();

  static int64_t ToNs(Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  const int64_t delay_us_;
  mutable std::atomic<double> visible_;
  // Due time (steady-clock ns) of pending_.front(), kIdle when empty. The
  // hot-path read gate: while now < next_due_ns_ nothing can flip and
  // Read() is two atomic loads.
  mutable std::atomic<int64_t> next_due_ns_{kIdle};
  mutable std::mutex mu_;          // guards pending_ (delayed mode only)
  mutable std::deque<Pending> pending_;
};

// Shared per-query state across all simulated instances: the global result
// tracker, the (possibly delayed) MRP/MRK views, the shard pool instances
// steal main-search work from, the quiescence barriers that gate the
// relaxation decision and query completion, cancellation, first-result
// timing, and — for the instance-failure model (DESIGN.md §7) — shard
// leases, heartbeats, the dead-instance bookkeeping and the orphaned
// candidate depot.
class Coordinator {
 public:
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us);
  Coordinator(int num_instances, int64_t k, ConstrainMode mode,
              const RankModel* rank_model, int64_t broadcast_delay_us,
              ResultTracker::Diversity diversity);

  ResultTracker& tracker() { return tracker_; }
  const ResultTracker& tracker() const { return tracker_; }

  // Warm-start bounds from the semantic cache (see RefineOptions). The cap
  // tightens every MRP view from the start; the floor joins the MRK view
  // only in the constraining phase (before the flip it could suppress
  // exact results that must count toward the relaxation decision). Call
  // once before the instances start.
  void SetWarmBounds(double mrp_cap, double mrk_floor) {
    warm_mrp_cap_ = mrp_cap;
    warm_mrk_floor_ = mrk_floor;
    has_warm_mrk_floor_ =
        mrk_floor != -std::numeric_limits<double>::infinity();
  }

  // Views of MRP/MRK as an instance would see them over the interconnect.
  double CurrentMrp() const { return std::min(mrp_.Read(), warm_mrp_cap_); }
  double CurrentMrk() const {
    const double mrk = mrk_.Read();
    if (has_warm_mrk_floor_ && tracker_.phase() == QueryPhase::kConstraining) {
      return std::max(mrk, warm_mrk_floor_);
    }
    return mrk;
  }

  // Phase reads go straight to the tracker: a stale "collecting" view only
  // records extra fails, never loses results.
  QueryPhase CurrentPhase() const { return tracker_.phase(); }

  // Streaming progress sink (RefineOptions::on_progress). Call once
  // before the instances start. PublishProgress then forwards strict
  // MRP/MRK improvements and the one-time phase flip to the sink, under
  // a dedicated mutex so emissions are serialized and per-kind monotone.
  void SetProgressSink(std::function<void(const ProgressEvent&)> sink) {
    progress_sink_ = std::move(sink);
  }

  // True iff the sub-tree with the given best skyline corner is dominated
  // by the current skyline (skyline constraining's dynamic check).
  bool SkylineDominatesBox(const std::vector<double>& corner) const;

  // Called by validators after every tracker insertion to refresh the
  // broadcast values.
  void PublishProgress();

  // Records the first confirmed result's timestamp (idempotent).
  void NoteResult();
  double first_result_s() const { return first_result_s_.load(); }

  // --- work-stealing shard pool ---
  // Seeds the pool with the main search's variable-0 shards; call once
  // before the instances start. Shards are handed out lowest-first.
  void SeedShards(std::vector<cp::IntDomain> shards);
  // Pulls the next shard; nullopt once the pool is drained or the query is
  // cancelled. Never blocks. The id-less overload takes no lease (legacy
  // callers without failure handling).
  std::optional<cp::IntDomain> PopShard();
  // Leasing overload: the returned shard stays charged to `instance` until
  // its next PopShard call (which marks the previous shard finished). If
  // the instance dies while leased, DeclareDead requeues the shard.
  std::optional<cp::IntDomain> PopShard(int instance);
  int64_t shards_seeded() const { return shards_seeded_; }

  // Legacy end-of-main-search barrier: each instance arrives once after
  // the shard pool handed it nullopt and its validator drained; the call
  // returns when the pool is drained AND every instance arrived. No
  // failure handling — kept for callers that drive the pool manually.
  void ArriveMainSearchDone();

  // Failure-aware end-of-main-search barrier. Returns true once every
  // *live* instance is quiescent and no shard is pooled, leased or
  // orphaned (the relaxation decision is then frozen — see
  // main_exact_count). Returns false when recovered work reappeared
  // (requeued shards / orphaned candidates): the caller must go back to
  // working and re-arrive later.
  bool AwaitMainSearchDone(int instance);
  // Confirmed exact results at the instant the main barrier completed;
  // every instance bases its relaxation decision on this one snapshot so
  // the cluster always takes the same branch.
  int64_t main_exact_count() const;

  // End-of-query barrier, same protocol as AwaitMainSearchDone. With
  // `replaying` the pool of recorded fails (including leased replays of
  // crashed instances, which the detector re-pools) must also be
  // exhausted before the query can complete.
  bool AwaitQueryDone(int instance, bool replaying);
  // Gives AwaitQueryDone its view of the shared replay pool.
  void AttachRegistry(FailRegistry* registry);

  // --- failure detection & recovery (DESIGN.md §7) ---
  void Heartbeat(int instance);
  int64_t LastHeartbeatNs(int instance) const;
  // Re-seeds every heartbeat slot with "now". Called right before the
  // instances start so lease timeouts measure from slot start, not
  // coordinator construction (which admission queueing can leave
  // arbitrarily far in the past).
  void ResetHeartbeats();
  // True while the instance is subject to failure detection (live; not
  // retired after normal completion, not already declared dead).
  bool IsMonitorable(int instance) const;
  // Declares the instance dead: requeues its leased shard (if any),
  // updates the live count, cancels the query if nobody is left, and
  // wakes the barriers. False if it was not live (idempotent).
  bool DeclareDead(int instance);
  // Normal completion: the instance stops heartbeating on purpose and
  // must no longer be monitored.
  void RetireInstance(int instance);
  // Wakes barrier waiters after out-of-band work changes (e.g. the
  // detector reclaimed leased replays into the registry).
  void NotifyWorkChanged();

  // Orphaned candidates of dead instances, awaiting re-validation by a
  // surviving instance.
  void DepositOrphans(std::vector<searchlight::Candidate> orphans);
  std::optional<searchlight::Candidate> PopOrphan();

  int num_instances() const { return num_instances_; }
  int64_t instances_lost() const;
  int64_t shards_requeued() const;

  const std::atomic<bool>& cancel_flag() const { return cancel_; }
  void Cancel();
  bool cancelled() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }

 private:
  enum class InstanceState { kLive, kDead, kRetired };

  // True when no live instance holds a shard lease.
  bool NoShardLeasedLocked() const;
  // Marks the main barrier complete and freezes the relaxation decision.
  void FinishMainLocked();

  const int num_instances_;
  ResultTracker tracker_;
  // Skyline dominance checks must see the tracker's skyline; they are
  // routed through ResultTracker (under its lock).
  DelayedBroadcast mrp_;
  DelayedBroadcast mrk_;
  // Warm-start bounds (SetWarmBounds); written once before the instances
  // start, read-only afterwards.
  double warm_mrp_cap_ = std::numeric_limits<double>::infinity();
  double warm_mrk_floor_ = -std::numeric_limits<double>::infinity();
  bool has_warm_mrk_floor_ = false;
  // Progress streaming (SetProgressSink): the sink plus the last emitted
  // values, all guarded by progress_mu_ — emissions must be serialized
  // so a reordered pair of PublishProgress calls cannot stream a bound
  // that moves backwards.
  std::function<void(const ProgressEvent&)> progress_sink_;
  mutable std::mutex progress_mu_;
  double emitted_mrp_ = std::numeric_limits<double>::infinity();
  double emitted_mrk_ = -std::numeric_limits<double>::infinity();
  bool emitted_constraining_ = false;
  std::atomic<bool> cancel_{false};
  std::atomic<double> first_result_s_{-1.0};
  std::atomic<bool> have_first_{false};
  Stopwatch clock_;

  // Heartbeats are written on the hot path of every instance's beat
  // thread; they bypass mu_ (plain atomics, one slot per instance).
  std::unique_ptr<std::atomic<int64_t>[]> heartbeat_ns_;

  // One mutex covers the shard pool, leases, barriers, orphan depot and
  // instance liveness: every recovery transition (death, requeue,
  // deposit) must be atomic against the barrier conditions.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<cp::IntDomain> shards_;
  int64_t shards_seeded_ = 0;
  std::vector<std::optional<cp::IntDomain>> shard_lease_;
  std::deque<searchlight::Candidate> orphans_;
  std::vector<InstanceState> state_;
  // Which instances currently count as "arrived" at each barrier; needed
  // to discount a dead instance's arrival.
  std::vector<char> main_arrived_flag_;
  std::vector<char> query_arrived_flag_;
  int live_count_;
  FailRegistry* registry_ = nullptr;
  int main_arrived_ = 0;
  bool main_done_ = false;
  int64_t main_exact_count_ = 0;
  int query_arrived_ = 0;
  bool query_done_ = false;
  int64_t instances_lost_ = 0;
  int64_t shards_requeued_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_COORDINATOR_H_
