#include "core/tracker.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace dqr::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ResultTracker::ResultTracker(int64_t k, ConstrainMode mode,
                             const RankModel* rank_model)
    : ResultTracker(k, mode, rank_model, Diversity{}) {}

ResultTracker::ResultTracker(int64_t k, ConstrainMode mode,
                             const RankModel* rank_model,
                             Diversity diversity)
    : k_(k),
      pool_k_(diversity.spacing.empty() ? k
                                        : std::max(k, diversity.pool_k)),
      mode_(mode),
      rank_model_(rank_model),
      diversity_(std::move(diversity)) {
  DQR_CHECK(k_ >= 0);
  if (mode_ != ConstrainMode::kNone && k_ > 0) {
    DQR_CHECK_MSG(rank_model_ != nullptr,
                  "constraining requires a rank model");
  }
  keep_all_exact_ = mode_ == ConstrainMode::kNone || k_ == 0;
}

AddOutcome ResultTracker::Add(Solution solution) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddLocked(std::move(solution));
}

AddOutcome ResultTracker::AddLocked(Solution solution) {
  if (!seen_.insert(solution.point).second) return AddOutcome::kDuplicate;

  const bool exact = solution.rp == 0.0;
  if (!exact) {
    if (phase_ == QueryPhase::kConstraining || k_ == 0) {
      return AddOutcome::kRejected;
    }
    // Relaxed candidate: keep iff it fits the current best-pool by
    // (RP, point) — the point tie-break makes the final top-k
    // deterministic regardless of validation order.
    const double old_mrp =
        static_cast<int64_t>(relax_top_.size()) < pool_k_
            ? 1.0
            : std::prev(relax_top_.end())->rp;
    if (static_cast<int64_t>(relax_top_.size()) >= pool_k_ &&
        !ByPenalty{}(solution, *std::prev(relax_top_.end()))) {
      return AddOutcome::kRejected;
    }
    relax_top_.insert(std::move(solution));
    if (static_cast<int64_t>(relax_top_.size()) > pool_k_) {
      relax_top_.erase(std::prev(relax_top_.end()));
    }
    const double new_mrp =
        static_cast<int64_t>(relax_top_.size()) < pool_k_
            ? 1.0
            : std::prev(relax_top_.end())->rp;
    if (new_mrp < old_mrp) ++mrp_updates_;
    return AddOutcome::kAcceptedRelaxed;
  }

  // Exact result.
  ++exact_count_;
  if (keep_all_exact_ || phase_ == QueryPhase::kCollecting) {
    exact_all_.push_back(solution);
  }
  if (k_ > 0) {
    relax_top_.insert(solution);
    if (static_cast<int64_t>(relax_top_.size()) > pool_k_) {
      relax_top_.erase(std::prev(relax_top_.end()));
      ++mrp_updates_;
    }
  }
  const QueryPhase phase_before = phase_;
  MaybeStartConstraining();
  if (phase_before == QueryPhase::kCollecting &&
      phase_ == QueryPhase::kConstraining) {
    // This solution triggered the transition; the seeding loop above has
    // already inserted it (from exact_all_). Inserting it again here
    // would duplicate it — equal values dominate neither direction, so a
    // skyline would keep both copies.
    return AddOutcome::kAcceptedExact;
  }

  if (phase_ == QueryPhase::kConstraining) {
    if (mode_ == ConstrainMode::kSkyline) {
      DQR_CHECK(rank_model_ != nullptr);
      SkylineEntry entry;
      entry.oriented = rank_model_->OrientForSkyline(solution.values);
      entry.solution = std::move(solution);
      return skyline_.Add(std::move(entry)) ? AddOutcome::kAcceptedExact
                                            : AddOutcome::kRejected;
    }
    DQR_CHECK(mode_ == ConstrainMode::kRank);
    const double old_mrk =
        rank_top_.size() < static_cast<size_t>(pool_k_)
            ? -kInf
            : std::prev(rank_top_.end())->rk;
    if (rank_top_.size() >= static_cast<size_t>(pool_k_) &&
        !ByRank{}(solution, *std::prev(rank_top_.end()))) {
      return AddOutcome::kRejected;
    }
    rank_top_.insert(std::move(solution));
    if (rank_top_.size() > static_cast<size_t>(pool_k_)) {
      rank_top_.erase(std::prev(rank_top_.end()));
    }
    const double new_mrk =
        rank_top_.size() < static_cast<size_t>(pool_k_)
            ? -kInf
            : std::prev(rank_top_.end())->rk;
    if (new_mrk > old_mrk) ++mrk_updates_;
  }
  return AddOutcome::kAcceptedExact;
}

void ResultTracker::MaybeStartConstraining() {
  if (phase_ != QueryPhase::kCollecting) return;
  if (mode_ == ConstrainMode::kNone || k_ == 0) return;
  if (exact_count_ < k_) return;

  phase_ = QueryPhase::kConstraining;
  // Seed the constraining structures with the exact results found so far.
  for (Solution& s : exact_all_) {
    if (mode_ == ConstrainMode::kSkyline) {
      SkylineEntry entry;
      entry.oriented = rank_model_->OrientForSkyline(s.values);
      entry.solution = s;
      skyline_.Add(std::move(entry));
    } else {
      rank_top_.insert(s);
    }
  }
  if (mode_ == ConstrainMode::kRank) {
    while (rank_top_.size() > static_cast<size_t>(pool_k_)) {
      rank_top_.erase(std::prev(rank_top_.end()));
    }
    if (rank_top_.size() >= static_cast<size_t>(pool_k_)) ++mrk_updates_;
  }
  if (!keep_all_exact_) {
    exact_all_.clear();
    exact_all_.shrink_to_fit();
  }
}

QueryPhase ResultTracker::phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

double ResultTracker::Mrp() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (k_ == 0) return 1.0;
  if (static_cast<int64_t>(relax_top_.size()) < pool_k_) return 1.0;
  return std::prev(relax_top_.end())->rp;
}

double ResultTracker::Mrk() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ != QueryPhase::kConstraining ||
      mode_ != ConstrainMode::kRank) {
    return -kInf;
  }
  if (rank_top_.size() < static_cast<size_t>(pool_k_)) return -kInf;
  return std::prev(rank_top_.end())->rk;
}

int64_t ResultTracker::exact_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exact_count_;
}

int64_t ResultTracker::mrp_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mrp_updates_;
}

int64_t ResultTracker::mrk_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mrk_updates_;
}

bool ResultTracker::SkylineDominatesBox(
    const std::vector<double>& corner) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_ != QueryPhase::kConstraining ||
      mode_ != ConstrainMode::kSkyline) {
    return false;
  }
  return skyline_.DominatesBox(corner);
}

std::vector<Solution> ResultTracker::FinalResults() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Solution> out;
  if (phase_ == QueryPhase::kConstraining) {
    if (mode_ == ConstrainMode::kSkyline) {
      for (const SkylineEntry& entry : skyline_.entries()) {
        out.push_back(entry.solution);
      }
      std::sort(out.begin(), out.end(),
                [](const Solution& a, const Solution& b) {
                  return a.point < b.point;
                });
    } else {
      out = SelectDiverse(
          std::vector<Solution>(rank_top_.begin(), rank_top_.end()));
    }
    return out;
  }
  if (k_ == 0 || (mode_ == ConstrainMode::kNone && exact_count_ >= k_)) {
    out = exact_all_;
    std::sort(out.begin(), out.end(),
              [](const Solution& a, const Solution& b) {
                return a.point < b.point;
              });
    return out;
  }
  // Fewer than k exact results: the relaxation top-k (exact ones first,
  // since their RP is 0), spaced apart if diversity is configured.
  out = SelectDiverse(
      std::vector<Solution>(relax_top_.begin(), relax_top_.end()));
  return out;
}

bool ResultTracker::Conflicts(const std::vector<int64_t>& a,
                              const std::vector<int64_t>& b) const {
  DQR_CHECK(diversity_.spacing.size() == a.size());
  DQR_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t gap = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (gap >= diversity_.spacing[i]) return false;
  }
  return true;
}

std::vector<Solution> ResultTracker::SelectDiverse(
    std::vector<Solution> ordered) const {
  if (diversity_.spacing.empty()) {
    // No spacing configured: the pool size equals k, nothing to do.
    return ordered;
  }
  std::vector<Solution> out;
  for (Solution& candidate : ordered) {
    if (static_cast<int64_t>(out.size()) >= k_) break;
    bool conflicting = false;
    for (const Solution& kept : out) {
      if (Conflicts(candidate.point, kept.point)) {
        conflicting = true;
        break;
      }
    }
    if (!conflicting) out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace dqr::core
