#include "core/bundle.h"

#include <utility>

#include "common/check.h"

namespace dqr::core {

ConstraintBundle::ConstraintBundle(const searchlight::QuerySpec& query) {
  constraints_.reserve(query.constraints.size());
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    DQR_CHECK_MSG(qc.make_function != nullptr,
                  "query constraint lacks a function factory");
    constraints_.push_back(std::make_unique<cp::RangeConstraint>(
        qc.make_function(), qc.bounds));
  }
}

std::vector<cp::RangeConstraint*> ConstraintBundle::pointers() {
  std::vector<cp::RangeConstraint*> out;
  out.reserve(constraints_.size());
  for (const auto& c : constraints_) out.push_back(c.get());
  return out;
}

void ConstraintBundle::CompleteEstimates(FailRecord* fail) {
  DQR_CHECK(fail->estimates.size() == constraints_.size());
  for (size_t c = 0; c < constraints_.size(); ++c) {
    if (fail->evaluated[c]) continue;
    fail->estimates[c] = constraints_[c]->function().Estimate(fail->box);
    fail->evaluated[c] = 1;
  }
}

std::vector<std::unique_ptr<cp::FunctionState>> ConstraintBundle::SaveStates(
    const cp::DomainBox& box) const {
  std::vector<std::unique_ptr<cp::FunctionState>> states;
  states.reserve(constraints_.size());
  for (const auto& c : constraints_) {
    states.push_back(c->function().SaveState(box));
  }
  return states;
}

void ConstraintBundle::RestoreStates(const FailRecord& fail) {
  if (fail.states.empty()) return;
  DQR_CHECK(fail.states.size() == constraints_.size());
  for (size_t c = 0; c < constraints_.size(); ++c) {
    if (fail.states[c] != nullptr) {
      constraints_[c]->function().RestoreState(*fail.states[c]);
    }
  }
}

void ConstraintBundle::ClearStates() {
  for (const auto& c : constraints_) c->function().ClearState();
}

void ConstraintBundle::ResetEffectiveBounds() {
  for (const auto& c : constraints_) c->ResetEffectiveBounds();
}

cp::FunctionMemoStats ConstraintBundle::MemoStats() const {
  cp::FunctionMemoStats total;
  for (const auto& c : constraints_) total += c->function().memo_stats();
  return total;
}

std::vector<double> ConstraintBundle::EvaluateAll(
    const std::vector<int64_t>& point) {
  std::vector<double> values;
  values.reserve(constraints_.size());
  for (const auto& c : constraints_) {
    values.push_back(c->function().Evaluate(point));
  }
  return values;
}

std::vector<std::vector<double>> ConstraintBundle::EvaluateAllBatch(
    const std::vector<const std::vector<int64_t>*>& points) {
  std::vector<std::vector<double>> values(
      points.size(), std::vector<double>(constraints_.size()));
  std::vector<double> column(points.size());
  for (size_t c = 0; c < constraints_.size(); ++c) {
    constraints_[c]->function().EvaluateBatch(points, column.data());
    for (size_t i = 0; i < points.size(); ++i) values[i][c] = column[i];
  }
  return values;
}

}  // namespace dqr::core
