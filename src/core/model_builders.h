#ifndef DQR_CORE_MODEL_BUILDERS_H_
#define DQR_CORE_MODEL_BUILDERS_H_

#include "common/status.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "searchlight/query.h"

namespace dqr::core {

// Builds the penalty/rank models a refined execution of `query` uses.
// Instantiates one prototype function per constraint to obtain its value
// range. Exposed so that clients (and tests) can score solutions exactly
// the way the engine does.
Result<PenaltyModel> BuildPenaltyModel(const searchlight::QuerySpec& query,
                                       double alpha);
Result<RankModel> BuildRankModel(const searchlight::QuerySpec& query);

}  // namespace dqr::core

#endif  // DQR_CORE_MODEL_BUILDERS_H_
