#ifndef DQR_CORE_FAULT_H_
#define DQR_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace dqr::core {

// Where in an instance's lifecycle a fault event can fire. Events are
// counted per (instance, site); the counters advance deterministically
// with the work an instance performs, so a plan pins a fault to "the nth
// time instance i does X" rather than to a wall-clock moment.
enum class FaultSite {
  // The solver pulled a shard from the coordinator's pool (the shard is
  // leased but not yet executed — the crash-during-steal window).
  kShardPickup = 0,
  // The solver (or a speculative replayer) is about to record a fail into
  // the shared replay pool.
  kFailRecord = 1,
  // The validator popped a candidate and is about to validate it.
  kCandidateValidate = 2,
};
inline constexpr int kNumFaultSites = 3;

// What happens when an event matches.
enum class FaultAction {
  // The instance dies: all of its threads stop cooperatively, it stops
  // heartbeating, and it never touches shared state again. Recovery is
  // the coordinator's job (lease-timeout detection).
  kCrash,
  // The acting thread sleeps for delay_us once, then continues. The
  // instance keeps heartbeating, so a stall must never trigger recovery.
  kStall,
  // Like kStall, but the sleep repeats on this and every later event at
  // the same site (a persistently slow instance / straggler).
  kSlow,
};

// One scheduled fault: fires when instance `instance`'s event counter for
// `site` reaches `at_index` (kSlow: reaches or exceeds it).
struct FaultEvent {
  int instance = 0;
  FaultSite site = FaultSite::kShardPickup;
  int64_t at_index = 0;
  FaultAction action = FaultAction::kCrash;
  int64_t delay_us = 0;  // sleep duration for kStall / kSlow
};

// A deterministic schedule of fault events for one query execution.
// Thread through RefineOptions::fault_plan; the plan must outlive the
// query. An index the run never reaches simply never fires.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  bool HasCrash() const;

  // Builder conveniences (chainable).
  FaultPlan& Crash(int instance, FaultSite site, int64_t at_index);
  FaultPlan& Stall(int instance, FaultSite site, int64_t at_index,
                   int64_t delay_us);
  FaultPlan& Slow(int instance, FaultSite site, int64_t from_index,
                  int64_t delay_us);
};

// Deterministic pseudo-random plan for stress sweeps: `crashes` crash
// events spread over instances/sites/indices derived from `seed`.
FaultPlan MakeRandomCrashPlan(uint64_t seed, int num_instances, int crashes,
                              int64_t max_index);

// What the instance must do at a matched event.
struct FaultDecision {
  FaultAction action = FaultAction::kCrash;
  int64_t delay_us = 0;
};

// Runtime for a FaultPlan: thread-safe per-(instance, site) event
// counters plus the match logic. One injector serves a whole cluster; the
// hooks in instance.cc call OnEvent and apply the decision.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int num_instances);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Advances the (instance, site) counter and returns the action matching
  // this event, if any. Crash wins over stall/slow when both match;
  // overlapping sleeps accumulate.
  std::optional<FaultDecision> OnEvent(int instance, FaultSite site);

 private:
  struct SiteState {
    std::atomic<int64_t> counter{0};
    std::vector<FaultEvent> events;  // immutable after construction
  };

  SiteState& At(int instance, FaultSite site) {
    return *sites_[static_cast<size_t>(instance) * kNumFaultSites +
                   static_cast<size_t>(site)];
  }

  std::vector<std::unique_ptr<SiteState>> sites_;
};

}  // namespace dqr::core

#endif  // DQR_CORE_FAULT_H_
