#ifndef DQR_CORE_PENALTY_H_
#define DQR_CORE_PENALTY_H_

#include <limits>
#include <vector>

#include "common/interval.h"

namespace dqr::core {

// Per-constraint inputs to the relaxation penalty (§3.1).
struct PenaltySpec {
  // Original query bounds [a, b] (may be half-open via +-infinity).
  Interval bounds;
  // Hard limits [min f_c, max f_c]; normalizes RD_c and bounds how far the
  // constraint may ever be relaxed.
  Interval value_range;
  // w_c in RD(r) = max_c w_c RD_c(r); in [0, 1].
  double weight = 1.0;
  // Whether the constraint belongs to C^r. Non-relaxable constraints are
  // hard: violating one gives an infinite penalty.
  bool relaxable = true;
};

// The paper's default relaxation penalty model:
//
//   RD_c(r) = 0 if a <= t <= b, (t-b)/(max f - b) if t > b,
//             (a-t)/(a - min f) if t < a          (normalized to [0,1])
//   RD(r)   = max_c w_c RD_c(r)
//   VC(r)   = #violated relaxable constraints / |C^r|
//   RP(r)   = alpha * RD(r) + (1 - alpha) * VC(r)
//
// plus the interval (sub-tree) versions BRP/WRP used for fail ranking
// (§4.1) and the MRP-driven interval tightening used at replays.
//
// Values beyond a constraint's value_range are hard violations: RP becomes
// infinite ("we will not relax beyond the specified min/max", §3.1).
//
// Customization (§3.3): subclass and override the virtual methods to
// install a custom penalty. The engine requires of a custom RP() that
//   * Penalty(values) >= 0, with 0 exactly for results satisfying the
//     original query, and larger = worse;
//   * BestPenalty(estimates) never exceeds the minimum Penalty over any
//     assignment whose values lie within the estimates (no
//     overestimation of the best case — sub-trees are pruned when their
//     BestPenalty exceeds the MRP);
//   * MaxAllowedDistance may simply return infinity, in which case
//     replays relax violated constraints to their recorded [a', b']
//     estimates without MRP-driven tightening (the paper's treatment of
//     black-box custom functions).
// Install via RefineOptions::custom_penalty.
class PenaltyModel {
 public:
  static constexpr double kInfinitePenalty =
      std::numeric_limits<double>::infinity();

  PenaltyModel(std::vector<PenaltySpec> specs, double alpha);
  virtual ~PenaltyModel() = default;

  int num_constraints() const { return static_cast<int>(specs_.size()); }
  int num_relaxable() const { return num_relaxable_; }
  double alpha() const { return alpha_; }
  const PenaltySpec& spec(int c) const {
    return specs_[static_cast<size_t>(c)];
  }

  // Normalized relaxation distance of constraint `c` at value `t`
  // (unweighted); > 1 when t falls outside the value range.
  double RelaxDistance(int c, double t) const;

  // RD(r) over exact per-constraint values (weighted max over C^r).
  virtual double TotalDistance(const std::vector<double>& values) const;

  // VC(r): violated relaxable constraints / |C^r|.
  virtual double ViolationFraction(const std::vector<double>& values) const;

  // RP(r); kInfinitePenalty if a non-relaxable constraint is violated or
  // any relaxable value lies beyond its value range.
  virtual double Penalty(const std::vector<double>& values) const;

  // Best (lowest) possible RP over a sub-tree whose constraint estimates
  // are `estimates` — the BRP of §4.1. Constraints with `known[c] ==
  // false` are treated as unconstrained (best case 0), which is what the
  // lazy fail-recording mode needs. kInfinitePenalty if some constraint
  // can never be satisfied even maximally relaxed.
  virtual double BestPenalty(const std::vector<Interval>& estimates,
                     const std::vector<char>& known) const;

  // Worst (highest) possible RP over the sub-tree; unknown constraints
  // assume their full value range.
  virtual double WorstPenalty(const std::vector<Interval>& estimates,
                      const std::vector<char>& known) const;

  // Largest RD(r) a candidate violating `violation_fraction` of C^r may
  // have while keeping RP(r) <= mrp (§4.1); +infinity when alpha == 0 (no
  // distance-based tightening possible).
  virtual double MaxAllowedDistance(double mrp, double violation_fraction) const;

  // Bounds of constraint `c` relaxed to (unweighted) distance `rd` on both
  // sides, clipped to the value range. rd >= 0.
  virtual Interval RelaxedBounds(int c, double rd) const;

 private:
  // Best-case unweighted RD_c over an estimate interval: 0 when the
  // estimate touches the bounds, else the normalized gap.
  double BestDistance(int c, const Interval& estimate) const;
  double WorstDistance(int c, const Interval& estimate) const;

  std::vector<PenaltySpec> specs_;
  double alpha_;
  int num_relaxable_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_PENALTY_H_
