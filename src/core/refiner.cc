#include "core/refiner.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/coordinator.h"
#include "core/fail_registry.h"
#include "core/fault.h"
#include "core/instance.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "cp/function.h"
#include "exec/timer_wheel.h"
#include "exec/worker_pool.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace dqr::core {
namespace {

// Cancels the coordinator when the wall-clock budget expires. Legacy
// mode owns a dedicated sleeper thread per query; pool mode registers a
// one-shot on the shared timer wheel instead (time_budget_s option).
class Watchdog {
 public:
  Watchdog(Coordinator* coordinator, double budget_s,
           exec::TimerWheel* wheel)
      : coordinator_(coordinator), budget_s_(budget_s), wheel_(wheel) {
    if (budget_s_ <= 0.0) return;
    if (wheel_ != nullptr) {
      timer_ = wheel_->AddOnce(static_cast<int64_t>(budget_s_ * 1e6),
                               [coordinator] { coordinator->Cancel(); });
      return;
    }
    thread_ = std::thread([this] { Run(); });
  }

  ~Watchdog() {
    if (wheel_ != nullptr) {
      if (budget_s_ > 0.0) wheel_->Cancel(timer_);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(budget_s_ * 1e6));
    cv_.wait_until(lock, deadline, [this] { return stop_; });
    if (!stop_) coordinator_->Cancel();
  }

  Coordinator* coordinator_;
  double budget_s_;
  exec::TimerWheel* wheel_;
  exec::TimerWheel::TimerId timer_ = 0;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Sweep cadence of the failure detector: nowhere near heartbeat
// granularity — a quarter of the lease keeps the detection-latency bound
// at ~1.25x the lease timeout while the sweep's lock traffic stays
// negligible.
int64_t SweepIntervalUs(int64_t heartbeat_interval_us,
                        int64_t lease_timeout_us) {
  return std::max(heartbeat_interval_us, lease_timeout_us / 4);
}

// One sweep state machine of the lease-timeout failure detector
// (DESIGN.md §7): a periodic pass over the instances' heartbeat slots.
// An instance whose last beat is older than the lease timeout is
// declared dead and its in-flight work is recovered — the leased shard
// back into the pool, abandoned replay leases back into the registry,
// queued/in-flight candidates into the coordinator's orphan depot for
// re-validation by a survivor.
//
// Tick() must only ever run from one thread at a time (the legacy
// detector thread, or the shared timer wheel whose callbacks are
// serialized); dead_ is unsynchronized on that contract.
class DetectorSweep {
 public:
  DetectorSweep(Coordinator* coordinator, FailRegistry* registry,
                std::vector<std::unique_ptr<InstanceRunner>>* runners,
                int64_t timeout_us, obs::ThreadTracer tracer)
      : coordinator_(coordinator),
        registry_(registry),
        runners_(runners),
        tracer_(tracer),
        timeout_ns_(timeout_us * 1000) {}

  void Tick() {
    const int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    bool changed = false;
    for (int i = 0; i < coordinator_->num_instances(); ++i) {
      if (dead_.count(i) != 0) {
        // A dying thread may abandon its replay lease after we declared
        // it dead; keep re-polling until everything is re-pooled.
        if (const int64_t n = registry_->ReclaimFrom(i); n > 0) {
          changed = true;
          tracer_.Instant(obs::EventName::kLeaseReclaim,
                          static_cast<double>(n));
        }
        continue;
      }
      if (!coordinator_->IsMonitorable(i)) continue;
      if (now - coordinator_->LastHeartbeatNs(i) < timeout_ns_) continue;
      dead_.insert(i);
      tracer_.Instant(obs::EventName::kInstanceDead,
                      static_cast<double>(i));
      if (const int64_t n = registry_->ReclaimFrom(i); n > 0) {
        changed = true;
        tracer_.Instant(obs::EventName::kLeaseReclaim,
                        static_cast<double>(n));
      }
      // Deposit the orphans *before* DeclareDead shrinks the live count:
      // the barriers must see the recovered work no later than the
      // membership change, or they could complete without it.
      std::vector<searchlight::Candidate> orphans =
          (*runners_)[static_cast<size_t>(i)]->HarvestOrphans();
      if (!orphans.empty()) {
        coordinator_->DepositOrphans(std::move(orphans));
      }
      coordinator_->DeclareDead(i);
      changed = true;
    }
    if (changed) coordinator_->NotifyWorkChanged();
  }

 private:
  Coordinator* coordinator_;
  FailRegistry* registry_;
  std::vector<std::unique_ptr<InstanceRunner>>* runners_;
  obs::ThreadTracer tracer_;
  const int64_t timeout_ns_;
  std::set<int> dead_;
};

// Legacy driver: a dedicated per-query thread ticking the sweep. Pool
// mode registers the sweep on the shared timer wheel instead.
class FailureDetector {
 public:
  FailureDetector(Coordinator* coordinator, FailRegistry* registry,
                  std::vector<std::unique_ptr<InstanceRunner>>* runners,
                  int64_t interval_us, int64_t timeout_us,
                  obs::ThreadTracer tracer)
      : sweep_(coordinator, registry, runners, timeout_us, tracer),
        interval_us_(SweepIntervalUs(interval_us, timeout_us)) {
    thread_ = std::thread([this] { Run(); });
  }

  ~FailureDetector() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::microseconds(interval_us_),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      sweep_.Tick();
      lock.lock();
    }
  }

  DetectorSweep sweep_;
  const int64_t interval_us_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

Status ValidateInputs(const searchlight::QuerySpec& query,
                      const RefineOptions& options) {
  if (query.domains.empty()) {
    return InvalidArgumentError("query has no decision variables");
  }
  for (const cp::IntDomain& d : query.domains) {
    if (d.empty()) {
      return InvalidArgumentError("decision variable domain is empty");
    }
  }
  if (query.k < 0) {
    return InvalidArgumentError("result cardinality k must be >= 0");
  }
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    if (qc.make_function == nullptr) {
      return InvalidArgumentError("constraint lacks a function factory");
    }
    if (qc.bounds.empty()) {
      return InvalidArgumentError("constraint bounds are empty");
    }
    if (qc.relax_weight < 0.0 || qc.relax_weight > 1.0) {
      return InvalidArgumentError("relax weight must lie in [0, 1]");
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return InvalidArgumentError("alpha must lie in [0, 1]");
  }
  if (options.replay_relaxation_distance <= 0.0 ||
      options.replay_relaxation_distance > 1.0) {
    return InvalidArgumentError("RRD must lie in (0, 1]");
  }
  if (options.num_instances < 1) {
    return InvalidArgumentError("need at least one instance");
  }
  if (options.shards_per_instance < 1) {
    return InvalidArgumentError("shards_per_instance must be >= 1");
  }
  if (options.max_recorded_fails <= 0) {
    return InvalidArgumentError("max_recorded_fails must be positive");
  }
  if (!options.result_spacing.empty()) {
    if (options.result_spacing.size() != query.domains.size()) {
      return InvalidArgumentError(
          "result_spacing must have one entry per decision variable");
    }
    for (const int64_t s : options.result_spacing) {
      if (s < 0) return InvalidArgumentError("spacing must be >= 0");
    }
    if (options.diversity_pool_factor < 1) {
      return InvalidArgumentError("diversity_pool_factor must be >= 1");
    }
  }
  if (options.trace != nullptr && options.trace_buffer_events <= 0) {
    return InvalidArgumentError("trace_buffer_events must be positive");
  }
  if (std::isnan(options.warm_mrp_cap) || options.warm_mrp_cap < 0.0) {
    return InvalidArgumentError("warm_mrp_cap must be >= 0");
  }
  if (std::isnan(options.warm_mrk_floor)) {
    return InvalidArgumentError("warm_mrk_floor must not be NaN");
  }
  if (options.heartbeat_interval_us <= 0) {
    return InvalidArgumentError("heartbeat_interval_us must be positive");
  }
  if (options.lease_timeout_us <= options.heartbeat_interval_us) {
    return InvalidArgumentError(
        "lease_timeout_us must exceed heartbeat_interval_us");
  }
  if (options.fault_plan != nullptr) {
    for (const FaultEvent& e : options.fault_plan->events) {
      if (e.instance < 0) {
        return InvalidArgumentError("fault event instance must be >= 0");
      }
      if (e.at_index < 0) {
        return InvalidArgumentError("fault event at_index must be >= 0");
      }
      if (e.delay_us < 0) {
        return InvalidArgumentError("fault event delay_us must be >= 0");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<RunResult> ExecuteQuery(const searchlight::QuerySpec& query,
                               const RefineOptions& options) {
  if (Status status = ValidateInputs(query, options); !status.ok()) {
    return status;
  }
  // Profiling without a caller-supplied trace records into the profile's
  // private Trace; re-enter with it patched in so everything below can
  // assume `options.trace` is the one ring sink.
  if (options.profile != nullptr && options.trace == nullptr) {
    RefineOptions profiled = options;
    profiled.trace = &options.profile->internal_trace();
    return ExecuteQuery(query, profiled);
  }
  // Each query gets its own trace epoch so successive queries recorded
  // into one Trace export as separate process groups. The epoch is
  // pinned explicitly on every ring this query creates: with concurrent
  // queries sharing one Trace, the implicit "current epoch" cursor
  // belongs to whichever query began last.
  int trace_epoch = -1;
  if (options.trace != nullptr) trace_epoch = options.trace->BeginQuery();

  // Reentrant execution (DESIGN.md §10): pool mode schedules the
  // instance loops onto the shared worker pool and all periodic work
  // onto the shared timer wheel.
  exec::WorkerPool* pool = options.worker_pool;
  exec::TimerWheel* wheel =
      pool == nullptr
          ? nullptr
          : (options.timer_wheel != nullptr ? options.timer_wheel
                                            : &exec::TimerWheel::Shared());

  Result<PenaltyModel> penalty_result =
      BuildPenaltyModel(query, options.alpha);
  if (!penalty_result.ok()) return penalty_result.status();
  Result<RankModel> rank_result = BuildRankModel(query);
  if (!rank_result.ok()) return rank_result.status();
  const PenaltyModel default_penalty = std::move(penalty_result).value();
  const RankModel default_rank = std::move(rank_result).value();

  // §3.3 customization: user-supplied models replace the defaults.
  const PenaltyModel& penalty = options.custom_penalty != nullptr
                                    ? *options.custom_penalty
                                    : default_penalty;
  const RankModel& rank = options.custom_rank != nullptr
                              ? *options.custom_rank
                              : default_rank;
  if (penalty.num_constraints() !=
          static_cast<int>(query.constraints.size()) ||
      rank.num_constraints() !=
          static_cast<int>(query.constraints.size())) {
    return InvalidArgumentError(
        "custom model does not cover the query's constraints");
  }

  // Refinement is governed by the effective cardinality: disabling the
  // framework reproduces plain Searchlight (every exact result returned).
  const int64_t effective_k = options.enable ? query.k : 0;
  const ConstrainMode mode =
      effective_k > 0 ? options.constrain : ConstrainMode::kNone;

  // Partition the search space on variable 0 into contiguous shards for
  // the shared work-stealing pool: shards_per_instance shards per instance
  // (capped by the domain size), pulled by instances until the pool
  // drains. shards_per_instance == 1 degenerates to the legacy static
  // 1-slice-per-instance split (same chunk arithmetic).
  const cp::IntDomain& split_dom = query.domains.front();
  const int64_t dom_size = std::max<int64_t>(1, split_dom.size());
  const int instances = static_cast<int>(
      std::min<int64_t>(options.num_instances, dom_size));
  const int64_t want_shards = std::min<int64_t>(
      dom_size,
      static_cast<int64_t>(options.shards_per_instance) * instances);
  std::vector<cp::IntDomain> shards;
  const int64_t chunk = (split_dom.size() + want_shards - 1) / want_shards;
  for (int64_t lo = split_dom.lo; lo <= split_dom.hi; lo += chunk) {
    shards.emplace_back(lo, std::min(split_dom.hi, lo + chunk - 1));
  }

  ResultTracker::Diversity diversity;
  if (effective_k > 0 && !options.result_spacing.empty()) {
    diversity.spacing = options.result_spacing;
    diversity.pool_k = effective_k * options.diversity_pool_factor;
  }
  Coordinator coordinator(instances, effective_k, mode, &rank,
                          options.broadcast_delay_us,
                          std::move(diversity));
  coordinator.SetWarmBounds(options.warm_mrp_cap, options.warm_mrk_floor);
  if (options.on_progress) {
    coordinator.SetProgressSink(options.on_progress);
  }
  coordinator.SeedShards(std::move(shards));
  // The cluster-wide replay pool: every instance records fails into it and
  // replays the globally most-promising ones out of it.
  FailRegistry registry(options.replay_order, options.max_recorded_fails);
  coordinator.AttachRegistry(&registry);
  Watchdog watchdog(&coordinator, options.time_budget_s, wheel);

  // Failure model: an injector when a fault plan is supplied, and the
  // heartbeat/lease detector whenever faults are possible or the caller
  // wants the production posture measured.
  const bool inject_faults =
      options.fault_plan != nullptr && !options.fault_plan->empty();
  const bool detect_failures =
      inject_faults || options.enable_failure_detector;
  std::unique_ptr<FaultInjector> injector;
  if (inject_faults) {
    injector =
        std::make_unique<FaultInjector>(*options.fault_plan, instances);
  }

  std::vector<std::unique_ptr<InstanceRunner>> runners;
  runners.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    InstanceConfig config;
    config.id = i;
    config.query = &query;
    config.options = &options;
    config.penalty = &penalty;
    config.rank = &rank;
    config.coordinator = &coordinator;
    config.registry = &registry;
    config.injector = injector.get();
    // Pool mode collapses the per-instance heartbeat threads into one
    // periodic slot timer registered below.
    config.run_heartbeat = detect_failures && pool == nullptr;
    config.pool = pool;
    config.trace_epoch = trace_epoch;
    runners.push_back(std::make_unique<InstanceRunner>(std::move(config)));
  }

  {
    std::unique_ptr<FailureDetector> detector;   // legacy thread driver
    std::unique_ptr<DetectorSweep> sweep;        // pool-mode sweep state
    exec::TimerWheel::TimerId beat_timer = 0;
    exec::TimerWheel::TimerId sweep_timer = 0;
    // Lease timeouts are measured per slot: the clock starts when this
    // query actually begins running, not when the coordinator was built
    // (admission queueing can separate the two arbitrarily).
    coordinator.ResetHeartbeats();
    for (auto& runner : runners) runner->Start();
    if (detect_failures) {
      obs::ThreadTracer detector_tracer =
          obs::MakeTracer(options.trace, /*instance=*/-1,
                          obs::ThreadRole::kDetector,
                          options.trace_buffer_events, trace_epoch);
      if (pool != nullptr) {
        // One slot timer beats every live instance — with Q concurrent
        // queries of I instances each, Q*I heartbeat threads collapse
        // into Q periodic timers on the shared wheel. A crashed instance
        // stops being beaten at the next firing, which is how the
        // detector sees it die (same contract as the legacy per-instance
        // beat thread observing hb_stop).
        std::vector<obs::ThreadTracer> beat_tracers;
        for (int i = 0; i < instances; ++i) {
          beat_tracers.push_back(obs::MakeTracer(
              options.trace, i, obs::ThreadRole::kHeartbeat,
              options.trace_buffer_events, trace_epoch));
        }
        Coordinator* coord = &coordinator;
        auto* runners_ptr = &runners;
        beat_timer = wheel->AddPeriodic(
            options.heartbeat_interval_us,
            [coord, runners_ptr, beat_tracers]() mutable {
              for (size_t i = 0; i < runners_ptr->size(); ++i) {
                if ((*runners_ptr)[i]->crashed()) continue;
                coord->Heartbeat(static_cast<int>(i));
                beat_tracers[i].Instant(obs::EventName::kHeartbeat);
              }
            });
        sweep = std::make_unique<DetectorSweep>(
            &coordinator, &registry, &runners, options.lease_timeout_us,
            detector_tracer);
        DetectorSweep* sweep_ptr = sweep.get();
        sweep_timer = wheel->AddPeriodic(
            SweepIntervalUs(options.heartbeat_interval_us,
                            options.lease_timeout_us),
            [sweep_ptr] { sweep_ptr->Tick(); });
      } else {
        detector = std::make_unique<FailureDetector>(
            &coordinator, &registry, &runners,
            options.heartbeat_interval_us, options.lease_timeout_us,
            detector_tracer);
      }
    }
    for (auto& runner : runners) runner->Join();
    // Cancel quiesces: after these return the wheel can no longer touch
    // the coordinator, registry or runners this scope owns.
    if (beat_timer != 0) wheel->Cancel(beat_timer);
    if (sweep_timer != 0) wheel->Cancel(sweep_timer);
  }

  // Settle accounts for crashes the detector never got to see: when the
  // last instances die together every thread exits and Join returns
  // before any lease can time out, so nobody was left to declare them.
  // This is the same (idempotent) transition the detector would have
  // made; with any survivor the barriers cannot complete around an
  // undetected crash, so this sweep only fires on total-loss runs.
  for (int i = 0; i < instances; ++i) {
    if (runners[static_cast<size_t>(i)]->crashed()) {
      coordinator.DeclareDead(i);
      registry.ReclaimFrom(i);
    }
  }

  RunResult result;
  result.trace_epoch = trace_epoch;
  result.results = coordinator.tracker().FinalResults();
  for (const auto& runner : runners) {
    result.per_instance.push_back(runner->stats());
    result.stats += result.per_instance.back();
  }
  result.stats.total_s = coordinator.ElapsedSeconds();
  result.stats.first_result_s = coordinator.first_result_s();
  result.stats.main_search_s = 0.0;
  for (const auto& runner : runners) {
    result.stats.main_search_s =
        std::max(result.stats.main_search_s, runner->stats().main_search_s);
  }
  result.stats.exact_results = coordinator.tracker().exact_count();
  result.stats.mrp_updates = coordinator.tracker().mrp_updates();
  result.stats.mrk_updates = coordinator.tracker().mrk_updates();
  // The replay pool is shared, so its gauges are cluster-level facts: the
  // summed and max views coincide by construction.
  result.stats.fails_discarded_at_record = registry.discarded_at_record();
  result.stats.fails_discarded_at_pop = registry.discarded_at_pop();
  result.stats.fails_dropped_full = registry.dropped_full();
  // Recovery counters are cluster-level facts (candidates_revalidated is
  // per-instance and already aggregated above).
  result.stats.instances_lost = coordinator.instances_lost();
  result.stats.shards_requeued = coordinator.shards_requeued();
  result.stats.replays_reclaimed = registry.reclaimed();
  result.stats.peak_fail_bytes = registry.peak_state_bytes();
  result.stats.peak_fail_count = registry.peak_size();
  result.stats.max_peak_fail_bytes = registry.peak_state_bytes();
  result.stats.max_peak_fail_count = registry.peak_size();
  result.stats.completed =
      result.stats.completed && !coordinator.cancelled();
  result.stats.query_latency.RecordSeconds(result.stats.total_s);
  if (options.profile != nullptr) {
    options.profile->Assemble(*options.trace, trace_epoch, result.stats);
  }
  return result;
}

}  // namespace dqr::core
