#include "core/refiner.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/coordinator.h"
#include "core/fail_registry.h"
#include "core/instance.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "cp/function.h"

namespace dqr::core {
namespace {

// Sleeps until the budget expires or Stop() is called, then cancels the
// coordinator. Used for the time_budget_s option.
class Watchdog {
 public:
  Watchdog(Coordinator* coordinator, double budget_s)
      : coordinator_(coordinator), budget_s_(budget_s) {
    if (budget_s_ > 0.0) {
      thread_ = std::thread([this] { Run(); });
    }
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(budget_s_ * 1e6));
    cv_.wait_until(lock, deadline, [this] { return stop_; });
    if (!stop_) coordinator_->Cancel();
  }

  Coordinator* coordinator_;
  double budget_s_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

Status ValidateInputs(const searchlight::QuerySpec& query,
                      const RefineOptions& options) {
  if (query.domains.empty()) {
    return InvalidArgumentError("query has no decision variables");
  }
  for (const cp::IntDomain& d : query.domains) {
    if (d.empty()) {
      return InvalidArgumentError("decision variable domain is empty");
    }
  }
  if (query.k < 0) {
    return InvalidArgumentError("result cardinality k must be >= 0");
  }
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    if (qc.make_function == nullptr) {
      return InvalidArgumentError("constraint lacks a function factory");
    }
    if (qc.bounds.empty()) {
      return InvalidArgumentError("constraint bounds are empty");
    }
    if (qc.relax_weight < 0.0 || qc.relax_weight > 1.0) {
      return InvalidArgumentError("relax weight must lie in [0, 1]");
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return InvalidArgumentError("alpha must lie in [0, 1]");
  }
  if (options.replay_relaxation_distance <= 0.0 ||
      options.replay_relaxation_distance > 1.0) {
    return InvalidArgumentError("RRD must lie in (0, 1]");
  }
  if (options.num_instances < 1) {
    return InvalidArgumentError("need at least one instance");
  }
  if (options.shards_per_instance < 1) {
    return InvalidArgumentError("shards_per_instance must be >= 1");
  }
  if (options.max_recorded_fails <= 0) {
    return InvalidArgumentError("max_recorded_fails must be positive");
  }
  if (!options.result_spacing.empty()) {
    if (options.result_spacing.size() != query.domains.size()) {
      return InvalidArgumentError(
          "result_spacing must have one entry per decision variable");
    }
    for (const int64_t s : options.result_spacing) {
      if (s < 0) return InvalidArgumentError("spacing must be >= 0");
    }
    if (options.diversity_pool_factor < 1) {
      return InvalidArgumentError("diversity_pool_factor must be >= 1");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<RunResult> ExecuteQuery(const searchlight::QuerySpec& query,
                               const RefineOptions& options) {
  if (Status status = ValidateInputs(query, options); !status.ok()) {
    return status;
  }

  Result<PenaltyModel> penalty_result =
      BuildPenaltyModel(query, options.alpha);
  if (!penalty_result.ok()) return penalty_result.status();
  Result<RankModel> rank_result = BuildRankModel(query);
  if (!rank_result.ok()) return rank_result.status();
  const PenaltyModel default_penalty = std::move(penalty_result).value();
  const RankModel default_rank = std::move(rank_result).value();

  // §3.3 customization: user-supplied models replace the defaults.
  const PenaltyModel& penalty = options.custom_penalty != nullptr
                                    ? *options.custom_penalty
                                    : default_penalty;
  const RankModel& rank = options.custom_rank != nullptr
                              ? *options.custom_rank
                              : default_rank;
  if (penalty.num_constraints() !=
          static_cast<int>(query.constraints.size()) ||
      rank.num_constraints() !=
          static_cast<int>(query.constraints.size())) {
    return InvalidArgumentError(
        "custom model does not cover the query's constraints");
  }

  // Refinement is governed by the effective cardinality: disabling the
  // framework reproduces plain Searchlight (every exact result returned).
  const int64_t effective_k = options.enable ? query.k : 0;
  const ConstrainMode mode =
      effective_k > 0 ? options.constrain : ConstrainMode::kNone;

  // Partition the search space on variable 0 into contiguous shards for
  // the shared work-stealing pool: shards_per_instance shards per instance
  // (capped by the domain size), pulled by instances until the pool
  // drains. shards_per_instance == 1 degenerates to the legacy static
  // 1-slice-per-instance split (same chunk arithmetic).
  const cp::IntDomain& split_dom = query.domains.front();
  const int64_t dom_size = std::max<int64_t>(1, split_dom.size());
  const int instances = static_cast<int>(
      std::min<int64_t>(options.num_instances, dom_size));
  const int64_t want_shards = std::min<int64_t>(
      dom_size,
      static_cast<int64_t>(options.shards_per_instance) * instances);
  std::vector<cp::IntDomain> shards;
  const int64_t chunk = (split_dom.size() + want_shards - 1) / want_shards;
  for (int64_t lo = split_dom.lo; lo <= split_dom.hi; lo += chunk) {
    shards.emplace_back(lo, std::min(split_dom.hi, lo + chunk - 1));
  }

  ResultTracker::Diversity diversity;
  if (effective_k > 0 && !options.result_spacing.empty()) {
    diversity.spacing = options.result_spacing;
    diversity.pool_k = effective_k * options.diversity_pool_factor;
  }
  Coordinator coordinator(instances, effective_k, mode, &rank,
                          options.broadcast_delay_us,
                          std::move(diversity));
  coordinator.SeedShards(std::move(shards));
  // The cluster-wide replay pool: every instance records fails into it and
  // replays the globally most-promising ones out of it.
  FailRegistry registry(options.replay_order, options.max_recorded_fails);
  Watchdog watchdog(&coordinator, options.time_budget_s);

  std::vector<std::unique_ptr<InstanceRunner>> runners;
  runners.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    InstanceConfig config;
    config.id = i;
    config.query = &query;
    config.options = &options;
    config.penalty = &penalty;
    config.rank = &rank;
    config.coordinator = &coordinator;
    config.registry = &registry;
    runners.push_back(std::make_unique<InstanceRunner>(std::move(config)));
  }

  for (auto& runner : runners) runner->Start();
  for (auto& runner : runners) runner->Join();

  RunResult result;
  result.results = coordinator.tracker().FinalResults();
  for (const auto& runner : runners) {
    result.per_instance.push_back(runner->stats());
    result.stats += result.per_instance.back();
  }
  result.stats.total_s = coordinator.ElapsedSeconds();
  result.stats.first_result_s = coordinator.first_result_s();
  result.stats.main_search_s = 0.0;
  for (const auto& runner : runners) {
    result.stats.main_search_s =
        std::max(result.stats.main_search_s, runner->stats().main_search_s);
  }
  result.stats.exact_results = coordinator.tracker().exact_count();
  result.stats.mrp_updates = coordinator.tracker().mrp_updates();
  result.stats.mrk_updates = coordinator.tracker().mrk_updates();
  // The replay pool is shared, so its gauges are cluster-level facts: the
  // summed and max views coincide by construction.
  result.stats.fails_discarded_at_record = registry.discarded_at_record();
  result.stats.fails_discarded_at_pop = registry.discarded_at_pop();
  result.stats.fails_dropped_full = registry.dropped_full();
  result.stats.peak_fail_bytes = registry.peak_state_bytes();
  result.stats.peak_fail_count = registry.peak_size();
  result.stats.max_peak_fail_bytes = registry.peak_state_bytes();
  result.stats.max_peak_fail_count = registry.peak_size();
  result.stats.completed =
      result.stats.completed && !coordinator.cancelled();
  return result;
}

}  // namespace dqr::core
