#include "core/refiner.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/coordinator.h"
#include "core/fail_registry.h"
#include "core/fault.h"
#include "core/instance.h"
#include "core/model_builders.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "cp/function.h"
#include "obs/trace.h"

namespace dqr::core {
namespace {

// Sleeps until the budget expires or Stop() is called, then cancels the
// coordinator. Used for the time_budget_s option.
class Watchdog {
 public:
  Watchdog(Coordinator* coordinator, double budget_s)
      : coordinator_(coordinator), budget_s_(budget_s) {
    if (budget_s_ > 0.0) {
      thread_ = std::thread([this] { Run(); });
    }
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(budget_s_ * 1e6));
    cv_.wait_until(lock, deadline, [this] { return stop_; });
    if (!stop_) coordinator_->Cancel();
  }

  Coordinator* coordinator_;
  double budget_s_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// The lease-timeout failure detector (DESIGN.md §7): a periodic sweep
// over the instances' heartbeat slots. An instance whose last beat is
// older than the lease timeout is declared dead and its in-flight work is
// recovered — the leased shard back into the pool, abandoned replay
// leases back into the registry, queued/in-flight candidates into the
// coordinator's orphan depot for re-validation by a survivor.
class FailureDetector {
 public:
  FailureDetector(Coordinator* coordinator, FailRegistry* registry,
                  std::vector<std::unique_ptr<InstanceRunner>>* runners,
                  int64_t interval_us, int64_t timeout_us,
                  obs::ThreadTracer tracer)
      : coordinator_(coordinator),
        registry_(registry),
        runners_(runners),
        tracer_(tracer),
        // Sweeping needs nowhere near heartbeat granularity: a quarter of
        // the lease keeps the detection-latency bound at ~1.25x the lease
        // timeout while the sweep's lock traffic stays negligible.
        interval_us_(std::max(interval_us, timeout_us / 4)),
        timeout_ns_(timeout_us * 1000) {
    thread_ = std::thread([this] { Run(); });
  }

  ~FailureDetector() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::microseconds(interval_us_),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      Tick();
      lock.lock();
    }
  }

  void Tick() {
    const int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    bool changed = false;
    for (int i = 0; i < coordinator_->num_instances(); ++i) {
      if (dead_.count(i) != 0) {
        // A dying thread may abandon its replay lease after we declared
        // it dead; keep re-polling until everything is re-pooled.
        if (const int64_t n = registry_->ReclaimFrom(i); n > 0) {
          changed = true;
          tracer_.Instant(obs::EventName::kLeaseReclaim,
                          static_cast<double>(n));
        }
        continue;
      }
      if (!coordinator_->IsMonitorable(i)) continue;
      if (now - coordinator_->LastHeartbeatNs(i) < timeout_ns_) continue;
      dead_.insert(i);
      tracer_.Instant(obs::EventName::kInstanceDead,
                      static_cast<double>(i));
      if (const int64_t n = registry_->ReclaimFrom(i); n > 0) {
        changed = true;
        tracer_.Instant(obs::EventName::kLeaseReclaim,
                        static_cast<double>(n));
      }
      // Deposit the orphans *before* DeclareDead shrinks the live count:
      // the barriers must see the recovered work no later than the
      // membership change, or they could complete without it.
      std::vector<searchlight::Candidate> orphans =
          (*runners_)[static_cast<size_t>(i)]->HarvestOrphans();
      if (!orphans.empty()) {
        coordinator_->DepositOrphans(std::move(orphans));
      }
      coordinator_->DeclareDead(i);
      changed = true;
    }
    if (changed) coordinator_->NotifyWorkChanged();
  }

  Coordinator* coordinator_;
  FailRegistry* registry_;
  std::vector<std::unique_ptr<InstanceRunner>>* runners_;
  obs::ThreadTracer tracer_;
  const int64_t interval_us_;
  const int64_t timeout_ns_;
  std::set<int> dead_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

Status ValidateInputs(const searchlight::QuerySpec& query,
                      const RefineOptions& options) {
  if (query.domains.empty()) {
    return InvalidArgumentError("query has no decision variables");
  }
  for (const cp::IntDomain& d : query.domains) {
    if (d.empty()) {
      return InvalidArgumentError("decision variable domain is empty");
    }
  }
  if (query.k < 0) {
    return InvalidArgumentError("result cardinality k must be >= 0");
  }
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    if (qc.make_function == nullptr) {
      return InvalidArgumentError("constraint lacks a function factory");
    }
    if (qc.bounds.empty()) {
      return InvalidArgumentError("constraint bounds are empty");
    }
    if (qc.relax_weight < 0.0 || qc.relax_weight > 1.0) {
      return InvalidArgumentError("relax weight must lie in [0, 1]");
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return InvalidArgumentError("alpha must lie in [0, 1]");
  }
  if (options.replay_relaxation_distance <= 0.0 ||
      options.replay_relaxation_distance > 1.0) {
    return InvalidArgumentError("RRD must lie in (0, 1]");
  }
  if (options.num_instances < 1) {
    return InvalidArgumentError("need at least one instance");
  }
  if (options.shards_per_instance < 1) {
    return InvalidArgumentError("shards_per_instance must be >= 1");
  }
  if (options.max_recorded_fails <= 0) {
    return InvalidArgumentError("max_recorded_fails must be positive");
  }
  if (!options.result_spacing.empty()) {
    if (options.result_spacing.size() != query.domains.size()) {
      return InvalidArgumentError(
          "result_spacing must have one entry per decision variable");
    }
    for (const int64_t s : options.result_spacing) {
      if (s < 0) return InvalidArgumentError("spacing must be >= 0");
    }
    if (options.diversity_pool_factor < 1) {
      return InvalidArgumentError("diversity_pool_factor must be >= 1");
    }
  }
  if (options.trace != nullptr && options.trace_buffer_events <= 0) {
    return InvalidArgumentError("trace_buffer_events must be positive");
  }
  if (std::isnan(options.warm_mrp_cap) || options.warm_mrp_cap < 0.0) {
    return InvalidArgumentError("warm_mrp_cap must be >= 0");
  }
  if (std::isnan(options.warm_mrk_floor)) {
    return InvalidArgumentError("warm_mrk_floor must not be NaN");
  }
  if (options.heartbeat_interval_us <= 0) {
    return InvalidArgumentError("heartbeat_interval_us must be positive");
  }
  if (options.lease_timeout_us <= options.heartbeat_interval_us) {
    return InvalidArgumentError(
        "lease_timeout_us must exceed heartbeat_interval_us");
  }
  if (options.fault_plan != nullptr) {
    for (const FaultEvent& e : options.fault_plan->events) {
      if (e.instance < 0) {
        return InvalidArgumentError("fault event instance must be >= 0");
      }
      if (e.at_index < 0) {
        return InvalidArgumentError("fault event at_index must be >= 0");
      }
      if (e.delay_us < 0) {
        return InvalidArgumentError("fault event delay_us must be >= 0");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<RunResult> ExecuteQuery(const searchlight::QuerySpec& query,
                               const RefineOptions& options) {
  if (Status status = ValidateInputs(query, options); !status.ok()) {
    return status;
  }
  // Each query gets its own trace epoch so successive queries recorded
  // into one Trace export as separate process groups.
  if (options.trace != nullptr) options.trace->BeginQuery();

  Result<PenaltyModel> penalty_result =
      BuildPenaltyModel(query, options.alpha);
  if (!penalty_result.ok()) return penalty_result.status();
  Result<RankModel> rank_result = BuildRankModel(query);
  if (!rank_result.ok()) return rank_result.status();
  const PenaltyModel default_penalty = std::move(penalty_result).value();
  const RankModel default_rank = std::move(rank_result).value();

  // §3.3 customization: user-supplied models replace the defaults.
  const PenaltyModel& penalty = options.custom_penalty != nullptr
                                    ? *options.custom_penalty
                                    : default_penalty;
  const RankModel& rank = options.custom_rank != nullptr
                              ? *options.custom_rank
                              : default_rank;
  if (penalty.num_constraints() !=
          static_cast<int>(query.constraints.size()) ||
      rank.num_constraints() !=
          static_cast<int>(query.constraints.size())) {
    return InvalidArgumentError(
        "custom model does not cover the query's constraints");
  }

  // Refinement is governed by the effective cardinality: disabling the
  // framework reproduces plain Searchlight (every exact result returned).
  const int64_t effective_k = options.enable ? query.k : 0;
  const ConstrainMode mode =
      effective_k > 0 ? options.constrain : ConstrainMode::kNone;

  // Partition the search space on variable 0 into contiguous shards for
  // the shared work-stealing pool: shards_per_instance shards per instance
  // (capped by the domain size), pulled by instances until the pool
  // drains. shards_per_instance == 1 degenerates to the legacy static
  // 1-slice-per-instance split (same chunk arithmetic).
  const cp::IntDomain& split_dom = query.domains.front();
  const int64_t dom_size = std::max<int64_t>(1, split_dom.size());
  const int instances = static_cast<int>(
      std::min<int64_t>(options.num_instances, dom_size));
  const int64_t want_shards = std::min<int64_t>(
      dom_size,
      static_cast<int64_t>(options.shards_per_instance) * instances);
  std::vector<cp::IntDomain> shards;
  const int64_t chunk = (split_dom.size() + want_shards - 1) / want_shards;
  for (int64_t lo = split_dom.lo; lo <= split_dom.hi; lo += chunk) {
    shards.emplace_back(lo, std::min(split_dom.hi, lo + chunk - 1));
  }

  ResultTracker::Diversity diversity;
  if (effective_k > 0 && !options.result_spacing.empty()) {
    diversity.spacing = options.result_spacing;
    diversity.pool_k = effective_k * options.diversity_pool_factor;
  }
  Coordinator coordinator(instances, effective_k, mode, &rank,
                          options.broadcast_delay_us,
                          std::move(diversity));
  coordinator.SetWarmBounds(options.warm_mrp_cap, options.warm_mrk_floor);
  coordinator.SeedShards(std::move(shards));
  // The cluster-wide replay pool: every instance records fails into it and
  // replays the globally most-promising ones out of it.
  FailRegistry registry(options.replay_order, options.max_recorded_fails);
  coordinator.AttachRegistry(&registry);
  Watchdog watchdog(&coordinator, options.time_budget_s);

  // Failure model: an injector when a fault plan is supplied, and the
  // heartbeat/lease detector whenever faults are possible or the caller
  // wants the production posture measured.
  const bool inject_faults =
      options.fault_plan != nullptr && !options.fault_plan->empty();
  const bool detect_failures =
      inject_faults || options.enable_failure_detector;
  std::unique_ptr<FaultInjector> injector;
  if (inject_faults) {
    injector =
        std::make_unique<FaultInjector>(*options.fault_plan, instances);
  }

  std::vector<std::unique_ptr<InstanceRunner>> runners;
  runners.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    InstanceConfig config;
    config.id = i;
    config.query = &query;
    config.options = &options;
    config.penalty = &penalty;
    config.rank = &rank;
    config.coordinator = &coordinator;
    config.registry = &registry;
    config.injector = injector.get();
    config.run_heartbeat = detect_failures;
    runners.push_back(std::make_unique<InstanceRunner>(std::move(config)));
  }

  {
    std::unique_ptr<FailureDetector> detector;
    for (auto& runner : runners) runner->Start();
    if (detect_failures) {
      detector = std::make_unique<FailureDetector>(
          &coordinator, &registry, &runners,
          options.heartbeat_interval_us, options.lease_timeout_us,
          obs::MakeTracer(options.trace, /*instance=*/-1,
                          obs::ThreadRole::kDetector,
                          options.trace_buffer_events));
    }
    for (auto& runner : runners) runner->Join();
  }

  // Settle accounts for crashes the detector never got to see: when the
  // last instances die together every thread exits and Join returns
  // before any lease can time out, so nobody was left to declare them.
  // This is the same (idempotent) transition the detector would have
  // made; with any survivor the barriers cannot complete around an
  // undetected crash, so this sweep only fires on total-loss runs.
  for (int i = 0; i < instances; ++i) {
    if (runners[static_cast<size_t>(i)]->crashed()) {
      coordinator.DeclareDead(i);
      registry.ReclaimFrom(i);
    }
  }

  RunResult result;
  result.results = coordinator.tracker().FinalResults();
  for (const auto& runner : runners) {
    result.per_instance.push_back(runner->stats());
    result.stats += result.per_instance.back();
  }
  result.stats.total_s = coordinator.ElapsedSeconds();
  result.stats.first_result_s = coordinator.first_result_s();
  result.stats.main_search_s = 0.0;
  for (const auto& runner : runners) {
    result.stats.main_search_s =
        std::max(result.stats.main_search_s, runner->stats().main_search_s);
  }
  result.stats.exact_results = coordinator.tracker().exact_count();
  result.stats.mrp_updates = coordinator.tracker().mrp_updates();
  result.stats.mrk_updates = coordinator.tracker().mrk_updates();
  // The replay pool is shared, so its gauges are cluster-level facts: the
  // summed and max views coincide by construction.
  result.stats.fails_discarded_at_record = registry.discarded_at_record();
  result.stats.fails_discarded_at_pop = registry.discarded_at_pop();
  result.stats.fails_dropped_full = registry.dropped_full();
  // Recovery counters are cluster-level facts (candidates_revalidated is
  // per-instance and already aggregated above).
  result.stats.instances_lost = coordinator.instances_lost();
  result.stats.shards_requeued = coordinator.shards_requeued();
  result.stats.replays_reclaimed = registry.reclaimed();
  result.stats.peak_fail_bytes = registry.peak_state_bytes();
  result.stats.peak_fail_count = registry.peak_size();
  result.stats.max_peak_fail_bytes = registry.peak_state_bytes();
  result.stats.max_peak_fail_count = registry.peak_size();
  result.stats.completed =
      result.stats.completed && !coordinator.cancelled();
  return result;
}

}  // namespace dqr::core
