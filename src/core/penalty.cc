#include "core/penalty.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dqr::core {
namespace {

// Tolerance on the "distance exceeds the value range" hard-limit check,
// absorbing floating-point noise at the range edges.
constexpr double kHardLimitSlack = 1e-9;

}  // namespace

PenaltyModel::PenaltyModel(std::vector<PenaltySpec> specs, double alpha)
    : specs_(std::move(specs)), alpha_(alpha) {
  DQR_CHECK(alpha_ >= 0.0 && alpha_ <= 1.0);
  for (const PenaltySpec& spec : specs_) {
    DQR_CHECK(!spec.bounds.empty());
    DQR_CHECK(!spec.value_range.empty());
    DQR_CHECK(spec.weight >= 0.0 && spec.weight <= 1.0);
    if (spec.relaxable) ++num_relaxable_;
  }
}

double PenaltyModel::RelaxDistance(int c, double t) const {
  const PenaltySpec& spec = specs_[static_cast<size_t>(c)];
  const Interval& b = spec.bounds;
  const Interval& r = spec.value_range;
  if (b.Contains(t)) return 0.0;
  if (t > b.hi) {
    const double room = r.hi - b.hi;
    return room > 0.0 ? (t - b.hi) / room : kInfinitePenalty;
  }
  const double room = b.lo - r.lo;
  return room > 0.0 ? (b.lo - t) / room : kInfinitePenalty;
}

double PenaltyModel::TotalDistance(const std::vector<double>& values) const {
  DQR_CHECK(values.size() == specs_.size());
  double total = 0.0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (!specs_[c].relaxable) continue;
    total = std::max(total, specs_[c].weight *
                                RelaxDistance(static_cast<int>(c),
                                              values[c]));
  }
  return total;
}

double PenaltyModel::ViolationFraction(
    const std::vector<double>& values) const {
  DQR_CHECK(values.size() == specs_.size());
  if (num_relaxable_ == 0) return 0.0;
  int violated = 0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (specs_[c].relaxable && !specs_[c].bounds.Contains(values[c])) {
      ++violated;
    }
  }
  return static_cast<double>(violated) / num_relaxable_;
}

double PenaltyModel::Penalty(const std::vector<double>& values) const {
  DQR_CHECK(values.size() == specs_.size());
  double rd = 0.0;
  int violated = 0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    const PenaltySpec& spec = specs_[c];
    const bool in_bounds = spec.bounds.Contains(values[c]);
    if (!spec.relaxable) {
      if (!in_bounds) return kInfinitePenalty;  // hard constraint
      continue;
    }
    if (in_bounds) continue;
    const double d = RelaxDistance(static_cast<int>(c), values[c]);
    if (d > 1.0 + kHardLimitSlack) return kInfinitePenalty;
    rd = std::max(rd, spec.weight * d);
    ++violated;
  }
  const double vc =
      num_relaxable_ == 0
          ? 0.0
          : static_cast<double>(violated) / num_relaxable_;
  return alpha_ * rd + (1.0 - alpha_) * vc;
}

double PenaltyModel::BestDistance(int c, const Interval& estimate) const {
  const PenaltySpec& spec = specs_[static_cast<size_t>(c)];
  if (spec.bounds.Intersects(estimate)) return 0.0;
  // The estimate lies entirely on one side; the closest endpoint gives
  // the best case.
  const double t =
      estimate.hi < spec.bounds.lo ? estimate.hi : estimate.lo;
  return RelaxDistance(c, t);
}

double PenaltyModel::WorstDistance(int c, const Interval& estimate) const {
  // RD_c is piecewise monotone away from the bounds, so the maximum over
  // an interval is attained at one of its endpoints. Feasible results
  // never exceed distance 1 (the hard limit), so clamp there.
  const double worst = std::max(RelaxDistance(c, estimate.lo),
                                RelaxDistance(c, estimate.hi));
  return std::min(worst, 1.0);
}

double PenaltyModel::BestPenalty(const std::vector<Interval>& estimates,
                                 const std::vector<char>& known) const {
  DQR_CHECK(estimates.size() == specs_.size());
  DQR_CHECK(known.size() == specs_.size());
  double rd = 0.0;
  int must_violate = 0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    if (!known[c]) continue;  // lazy mode: assume best case 0
    const PenaltySpec& spec = specs_[c];
    const bool disjoint = !spec.bounds.Intersects(estimates[c]);
    if (!spec.relaxable) {
      if (disjoint) return kInfinitePenalty;
      continue;
    }
    if (!disjoint) continue;
    const double d = BestDistance(static_cast<int>(c), estimates[c]);
    if (d > 1.0 + kHardLimitSlack) return kInfinitePenalty;
    rd = std::max(rd, spec.weight * d);
    ++must_violate;
  }
  const double vc =
      num_relaxable_ == 0
          ? 0.0
          : static_cast<double>(must_violate) / num_relaxable_;
  return alpha_ * rd + (1.0 - alpha_) * vc;
}

double PenaltyModel::WorstPenalty(const std::vector<Interval>& estimates,
                                  const std::vector<char>& known) const {
  DQR_CHECK(estimates.size() == specs_.size());
  DQR_CHECK(known.size() == specs_.size());
  double rd = 0.0;
  int may_violate = 0;
  for (size_t c = 0; c < specs_.size(); ++c) {
    const PenaltySpec& spec = specs_[c];
    if (!spec.relaxable) continue;
    const Interval est = known[c] ? estimates[c] : spec.value_range;
    if (spec.bounds.Contains(est)) continue;  // cannot violate
    rd = std::max(rd, spec.weight * WorstDistance(static_cast<int>(c), est));
    ++may_violate;
  }
  const double vc =
      num_relaxable_ == 0
          ? 0.0
          : static_cast<double>(may_violate) / num_relaxable_;
  return alpha_ * rd + (1.0 - alpha_) * vc;
}

double PenaltyModel::MaxAllowedDistance(double mrp,
                                        double violation_fraction) const {
  if (alpha_ == 0.0) return kInfinitePenalty;  // no tightening possible
  return std::max(0.0, (mrp - (1.0 - alpha_) * violation_fraction) / alpha_);
}

Interval PenaltyModel::RelaxedBounds(int c, double rd) const {
  DQR_CHECK(rd >= 0.0);
  const PenaltySpec& spec = specs_[static_cast<size_t>(c)];
  const Interval& b = spec.bounds;
  const Interval& r = spec.value_range;
  double lo = b.lo;
  double hi = b.hi;
  if (std::isfinite(lo)) {
    const double room = std::max(0.0, lo - r.lo);
    lo -= std::min(rd, 1.0) * room;
  }
  if (std::isfinite(hi)) {
    const double room = std::max(0.0, r.hi - hi);
    hi += std::min(rd, 1.0) * room;
  }
  return Interval(lo, hi);
}

}  // namespace dqr::core
