#include "core/skyline.h"

#include <utility>

#include "common/check.h"

namespace dqr::core {

bool Skyline::Dominates(const std::vector<double>& v,
                        const std::vector<double>& w) {
  DQR_CHECK(v.size() == w.size());
  bool strict = false;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] < w[i]) return false;
    if (v[i] > w[i]) strict = true;
  }
  return strict;
}

bool Skyline::Add(SkylineEntry entry) {
  for (const SkylineEntry& member : entries_) {
    if (Dominates(member.oriented, entry.oriented)) return false;
  }
  // Evict members the newcomer dominates.
  size_t kept = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!Dominates(entry.oriented, entries_[i].oriented)) {
      if (kept != i) entries_[kept] = std::move(entries_[i]);
      ++kept;
    }
  }
  entries_.resize(kept);
  entries_.push_back(std::move(entry));
  return true;
}

bool Skyline::DominatesBox(const std::vector<double>& best_corner) const {
  for (const SkylineEntry& member : entries_) {
    if (Dominates(member.oriented, best_corner)) return true;
  }
  return false;
}

}  // namespace dqr::core
