#ifndef DQR_CORE_OPTIONS_H_
#define DQR_CORE_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/solution.h"
#include "cp/search.h"

namespace dqr::exec {
class TimerWheel;
class WorkerPool;
}  // namespace dqr::exec

namespace dqr::obs {
class Profile;
class Trace;
}  // namespace dqr::obs

namespace dqr::core {

class PenaltyModel;
class RankModel;
struct FaultPlan;

// What the engine does when the query yields more than k results (§3.2).
enum class ConstrainMode {
  // No constraining: every exact result is returned (the manual "Off"
  // baseline of Table 4).
  kNone,
  // Scalar ranking: top-k by RK(r) with the dynamic BRK >= MRK constraint.
  kRank,
  // Vector domination: the skyline of non-dominated results (may exceed k).
  kSkyline,
};

// Replay scheduling for recorded fails.
enum class ReplayOrder {
  // Priority queue on BRP — the paper's utility-based approach.
  kBestFirst,
  // Encounter order — the "search through the fail" ablation of §5.3,
  // shown there to be up to orders of magnitude slower.
  kFifo,
};

// Ordering of the Solver -> Validator candidate queue.
enum class ValidatorQueueOrder {
  kFifo,
  // Priority on BRP (§4.2): more promising candidates validate first,
  // shrinking MRP faster and improving Solver-side pruning.
  kBrpPriority,
};

// Strategy for computing constraint-function estimates when a fail is
// recorded (§4.2 "Computing functions at fails").
enum class FailEvalMode {
  // Evaluate every C^r function at the failed node immediately.
  kFull,
  // Record only what the search already computed; missing estimates are
  // derived lazily if/when the fail is replayed.
  kLazy,
};

// One incremental progress notification, streamed while a query runs
// (the serve front end's PHASE / BOUND frames ride on these).
enum class ProgressKind {
  // The collecting -> constraining flip (§3.2). Emitted at most once.
  kPhaseConstraining,
  // MRP tightened: `value` is the new bound (monotone non-increasing).
  kMrp,
  // MRK tightened: `value` is the new bound (monotone non-decreasing).
  kMrk,
};

struct ProgressEvent {
  ProgressKind kind = ProgressKind::kMrp;
  double value = 0.0;  // the new bound; unused for the phase flip
};

// All knobs of the dynamic refinement framework. The defaults mirror the
// paper's defaults (alpha = 0.5, RRD = 1.0 i.e. no partial relaxation,
// lazy fail evaluation, UDF state saving on, BRP-sorted validator queue).
struct RefineOptions {
  // Master switch; false reproduces plain Searchlight (the manual
  // baseline): no fail tracking, no dynamic constraints, all exact
  // results returned.
  bool enable = true;

  // --- relaxation (§3.1, §4.1) ---
  // Weight of the relaxation distance vs the violated-constraint count in
  // RP(r) = alpha * RD(r) + (1 - alpha) * VC(r); in [0, 1].
  double alpha = 0.5;
  // Replay Relaxation Distance (§4.2): fraction of the allowed relaxation
  // interval actually applied when replaying a fail; in (0, 1].
  double replay_relaxation_distance = 1.0;
  FailEvalMode fail_eval = FailEvalMode::kLazy;
  // Save/restore function states (memoized bounds) at fails (§4.2).
  bool save_function_state = true;
  // Run speculative relaxation solvers while the main search is still in
  // progress and the validators are idle (§4.2).
  bool speculative = false;
  ReplayOrder replay_order = ReplayOrder::kBestFirst;
  // Memory guard: the registry holds at most this many fails; the worst
  // (highest-BRP) records are dropped first when the cap is exceeded.
  int64_t max_recorded_fails = 1 << 20;

  // --- constraining (§3.2, §4.3) ---
  ConstrainMode constrain = ConstrainMode::kRank;

  // --- diversity (§3.3's "dynamic functions" extension, future work in
  //     the paper; implemented here as greedy result spacing) ---
  // When non-empty (one entry per decision variable), the final top-k is
  // additionally forced apart: two results conflict when
  // |p_i - q_i| < result_spacing[i] holds for *every* variable i, and
  // conflicting worse results are skipped greedily in quality order.
  // Avoids the "many overlapping intervals" outcome of Figure 1. A
  // spacing of 0 on a variable makes that coordinate never conflict
  // (effectively ignoring the whole spacing box through that variable);
  // use a large value to ignore a coordinate instead.
  // Applies to relaxation top-k and rank top-k (not skyline / plain
  // output). Selection is made from an oversampled pool of
  // diversity_pool_factor * k tracked results, so the filter is
  // best-effort: raise the factor for stronger separation.
  std::vector<int64_t> result_spacing;
  int64_t diversity_pool_factor = 8;

  // --- customization (§3.3) ---
  // User-supplied penalty/ranking models; null means "build the paper's
  // defaults from the query". A custom model must be a PenaltyModel /
  // RankModel subclass covering exactly the query's constraints (see the
  // contract in penalty.h / rank.h) and must outlive the query execution.
  const PenaltyModel* custom_penalty = nullptr;
  const RankModel* custom_rank = nullptr;

  // --- warm start (cross-query semantic cache, DESIGN.md) ---
  // Initial upper bound on MRP injected before the search starts. Must be
  // *admissible*: some legal schedule of this very query reaches an MRP at
  // least this tight (e.g. the k-th best re-scored penalty over cached
  // solutions of an overlapping query — real solutions the search will
  // confirm). The engine prunes strictly above MRP, so an admissible cap
  // never drops a final-pool member and results stay byte-identical to a
  // cold run. +inf (the default) disables it.
  double warm_mrp_cap = std::numeric_limits<double>::infinity();
  // Initial lower bound on MRK, applied only once the query enters the
  // constraining phase (rank mode): before the phase flip an MRK floor
  // could suppress exact results that must count toward the flip decision.
  // Same admissibility contract as warm_mrp_cap. -inf disables it.
  double warm_mrk_floor = -std::numeric_limits<double>::infinity();

  // --- search heuristics ---
  // The Solver's decision process, tunable as in Searchlight. Heuristics
  // change the exploration order (and thus intermediate latencies), never
  // the final result set.
  cp::VarSelect var_select = cp::VarSelect::kWidestDomain;
  cp::ValueSplit value_split = cp::ValueSplit::kBisectLowFirst;

  // --- online answering ---
  // Invoked the moment a Validator confirms a result (an exact match, or
  // a relaxed result entering the current best-k) — Searchlight's online
  // output model: confirmed solutions stream to the user immediately.
  // Relaxed results streamed early may be superseded in the final top-k.
  // Called from validator threads concurrently; must be thread-safe and
  // cheap (it runs on the validation path). May be null.
  std::function<void(const Solution&)> on_result;
  // Invoked on strict MRP/MRK improvements and on the phase flip, after
  // the corresponding broadcast publish. Emissions are serialized and
  // per-kind monotone (an improvement superseded before its emission is
  // skipped, never delivered out of order). Called from validator
  // threads under a small coordinator mutex; must be thread-safe and
  // cheap. May be null. Progress streaming never changes query results.
  std::function<void(const ProgressEvent&)> on_progress;

  // --- engine / cluster ---
  // Simulated Searchlight instances; the search space is partitioned on
  // variable 0 and each instance runs its own solver + validator threads.
  int num_instances = 1;
  // Morsel-style work stealing: variable 0 is split into roughly
  // shards_per_instance * num_instances contiguous shards pushed into a
  // shared pool; instances pull shards until the pool drains, so a skewed
  // region no longer pins one instance while the others idle. 1 reproduces
  // the legacy static 1-slice-per-instance partitioning (the back-compat
  // escape hatch). The final result set is invariant under the shard count
  // — MRP/MRK monotonicity makes pruning scheduler-independent (see
  // DESIGN.md §3).
  int shards_per_instance = 8;
  ValidatorQueueOrder validator_queue = ValidatorQueueOrder::kBrpPriority;
  size_t validator_queue_capacity = 1024;
  // Simulated broadcast latency for MRP/MRK updates between instances, in
  // microseconds; 0 = immediate (single-node behaviour).
  int64_t broadcast_delay_us = 0;
  // Wall-clock budget in seconds; 0 = unlimited. When exceeded the query
  // is cancelled and the partial result returned with completed = false
  // (used for the USER-MAX ">1h" rows).
  double time_budget_s = 0.0;

  // --- failure model (see DESIGN.md §7) ---
  // Deterministic fault schedule (crash/stall/slow events keyed by
  // instance id and per-site event index); null = no injection. The plan
  // must outlive the query. Any crash event implies the failure detector.
  const FaultPlan* fault_plan = nullptr;
  // Run the heartbeat/lease failure detector even without a fault plan
  // (production posture; the zero-fault overhead is what
  // bench_fault_recovery measures). Off by default: a single-process
  // simulation cannot lose an instance unless faults are injected.
  bool enable_failure_detector = false;
  // Heartbeat cadence of each instance's beat thread (also the failure
  // detector's sweep interval). The default gives ~10 missed beats before
  // the lease expires while keeping the beat threads' wakeups rare enough
  // to stay under the < 2% zero-fault overhead budget even on a single
  // hardware thread (see bench_fault_recovery).
  int64_t heartbeat_interval_us = 25000;
  // An instance whose last heartbeat is older than this is declared dead
  // and recovered (shard requeue, replay reclaim, candidate
  // revalidation). Must comfortably exceed the heartbeat interval; the
  // default tolerates heavy scheduler noise (sanitizer runs).
  int64_t lease_timeout_us = 250000;

  // --- reentrant execution (DESIGN.md §10) ---
  // When set, the query runs in pool mode: instance loops (solver /
  // validator / speculative) are dispatched as tasks onto this
  // persistent worker pool instead of freshly spawned threads, the
  // per-instance heartbeat threads collapse into one periodic timer per
  // query slot, and the watchdog + failure-detector sweeps ride the
  // shared timer wheel. Null (the default) keeps the legacy per-query
  // thread engine. Scheduling is answer-preserving either way: the final
  // result set is schedule-invariant (DESIGN.md §3), so pool-mode
  // results are byte-identical to legacy runs. The pool must outlive the
  // query.
  exec::WorkerPool* worker_pool = nullptr;
  // Timer wheel hosting pool-mode periodic work (heartbeats, detector
  // sweeps, watchdog). Null with worker_pool set uses the process-shared
  // wheel; ignored in legacy mode.
  exec::TimerWheel* timer_wheel = nullptr;

  // --- observability (DESIGN.md §8) ---
  // Flight-recorder sink. Null (the default) disables tracing entirely —
  // every hook reduces to one predicted branch. When set, each engine
  // thread records spans/instants/counters into its own ring inside this
  // Trace; export with obs::WriteChromeTrace. The Trace must outlive the
  // query and may be shared across queries (each gets its own process
  // group in the export). Tracing never changes query results.
  obs::Trace* trace = nullptr;
  // Per-thread ring capacity in events (rounded up to a power of two).
  // On overflow the *oldest* events are overwritten, preserving the
  // newest trace_buffer_events per thread.
  int64_t trace_buffer_events = 1 << 16;
  // Per-query profiler sink. Null (the default) disables profiling: the
  // latency/accuracy hooks reduce to one predicted branch each, exactly
  // like tracing. When set, ExecuteQuery assembles a hierarchical
  // QueryProfile after the run — from `trace` if one was supplied, else
  // from the profile's own internal Trace — and the validator records
  // estimator-accuracy samples. Profiling never changes query results
  // (enforced by the fuzz `profile` dimension).
  obs::Profile* profile = nullptr;
};

}  // namespace dqr::core

#endif  // DQR_CORE_OPTIONS_H_
