#include "core/model_builders.h"

#include <memory>
#include <utility>
#include <vector>

#include "cp/function.h"

namespace dqr::core {
namespace {

// Reads each constraint's value range via a prototype function instance.
Status CollectRanges(const searchlight::QuerySpec& query,
                     std::vector<Interval>* ranges) {
  for (const searchlight::QueryConstraint& qc : query.constraints) {
    if (qc.make_function == nullptr) {
      return InvalidArgumentError("constraint lacks a function factory");
    }
    const std::unique_ptr<cp::ConstraintFunction> prototype =
        qc.make_function();
    if (prototype == nullptr) {
      return InvalidArgumentError("function factory returned null");
    }
    const Interval range = prototype->value_range();
    if (range.empty()) {
      return InvalidArgumentError("constraint function value range empty");
    }
    ranges->push_back(range);
  }
  return Status::Ok();
}

}  // namespace

Result<PenaltyModel> BuildPenaltyModel(const searchlight::QuerySpec& query,
                                       double alpha) {
  if (alpha < 0.0 || alpha > 1.0) {
    return InvalidArgumentError("alpha must lie in [0, 1]");
  }
  std::vector<Interval> ranges;
  if (Status status = CollectRanges(query, &ranges); !status.ok()) {
    return status;
  }
  std::vector<PenaltySpec> specs;
  specs.reserve(query.constraints.size());
  for (size_t c = 0; c < query.constraints.size(); ++c) {
    const searchlight::QueryConstraint& qc = query.constraints[c];
    if (qc.bounds.empty()) {
      return InvalidArgumentError("constraint bounds are empty");
    }
    if (qc.relax_weight < 0.0 || qc.relax_weight > 1.0) {
      return InvalidArgumentError("relax weight must lie in [0, 1]");
    }
    specs.push_back(
        PenaltySpec{qc.bounds, ranges[c], qc.relax_weight, qc.relaxable});
  }
  return PenaltyModel(std::move(specs), alpha);
}

Result<RankModel> BuildRankModel(const searchlight::QuerySpec& query) {
  std::vector<Interval> ranges;
  if (Status status = CollectRanges(query, &ranges); !status.ok()) {
    return status;
  }
  std::vector<RankSpec> specs;
  specs.reserve(query.constraints.size());
  for (size_t c = 0; c < query.constraints.size(); ++c) {
    const searchlight::QueryConstraint& qc = query.constraints[c];
    specs.push_back(RankSpec{
        qc.bounds, ranges[c], qc.rank_weight,
        qc.preference == searchlight::RankPreference::kMaximize,
        qc.constrainable});
  }
  return RankModel(std::move(specs));
}

}  // namespace dqr::core
