#ifndef DQR_CORE_STATS_H_
#define DQR_CORE_STATS_H_

#include <algorithm>
#include <cstdint>

#include "cp/search.h"

namespace dqr::core {

// Execution statistics of one refined query, aggregated over all
// instances. Times are wall-clock seconds.
struct RunStats {
  double total_s = 0.0;
  // Seconds until the first result was confirmed by a Validator (exact,
  // or relaxed during relaxation); negative if no result was produced.
  double first_result_s = -1.0;
  // Seconds until every instance finished its main (non-relaxed) search
  // and drained its validator.
  double main_search_s = 0.0;
  // Seconds this instance's solver spent actually searching shards (not
  // waiting at the barrier); aggregated by max — the cluster is as slow as
  // its busiest instance. The min/max spread across per_instance entries
  // is the work-stealing balance metric.
  double main_busy_s = 0.0;

  cp::SearchStats main_search;
  cp::SearchStats replay_search;

  // --- work stealing ---
  // Shards this instance pulled from the shared pool during main search.
  int64_t shards_executed = 0;
  // Replays of fails that a *different* instance recorded (only possible
  // with the shared replay pool).
  int64_t replays_stolen = 0;

  // --- fail tracking / replaying ---
  int64_t fails_recorded = 0;
  int64_t fails_discarded_at_record = 0;
  int64_t fails_discarded_at_pop = 0;
  int64_t fails_dropped_full = 0;
  int64_t replays = 0;
  int64_t replays_discarded = 0;  // popped but hopeless after re-check
  int64_t speculative_replays = 0;
  // peak_* fields are *summed* by operator+= — across instances that is a
  // cluster-wide footprint upper bound (each component may peak at a
  // different moment), NOT a high-water mark any single component reached.
  // The max_peak_* twins aggregate by max and give the worst single
  // component. For the shared fail pool both views coincide and are set
  // once from the pool by ExecuteQuery.
  int64_t peak_fail_bytes = 0;
  int64_t peak_fail_count = 0;
  int64_t max_peak_fail_bytes = 0;
  int64_t max_peak_fail_count = 0;

  // --- validation ---
  int64_t candidates = 0;
  int64_t validated = 0;
  int64_t dropped_precheck = 0;
  int64_t false_positives = 0;
  int64_t exact_results = 0;
  int64_t relaxed_accepted = 0;
  int64_t duplicates = 0;
  int64_t peak_queue = 0;      // summed: cluster-wide bound (see peak_*)
  int64_t max_peak_queue = 0;  // max: deepest single validator queue

  // --- failure recovery (all zero on a fault-free run) ---
  // Instances declared dead by the lease-timeout detector.
  int64_t instances_lost = 0;
  // In-flight shards of dead instances returned to the shard pool.
  int64_t shards_requeued = 0;
  // Leased replay fails of dead instances reclaimed into the shared pool.
  int64_t replays_reclaimed = 0;
  // Orphaned candidates (queued/in-flight at a dead validator) that a
  // surviving instance re-validated.
  int64_t candidates_revalidated = 0;

  // --- estimator memo caches (summed over constraint functions) ---
  // BoundsCache behaviour of the UDFs this thread ran: hit/miss mix of
  // synopsis lookups, Insert-path evictions, and cold entries displaced
  // so restored fail-state snapshots always land (§4.2).
  int64_t estimator_cache_hits = 0;
  int64_t estimator_cache_misses = 0;
  int64_t estimator_cache_evictions = 0;
  int64_t estimator_cache_restore_evictions = 0;

  // --- refinement bookkeeping ---
  int64_t mrp_updates = 0;
  int64_t mrk_updates = 0;

  // False iff the run was cancelled (time budget / external cancel).
  bool completed = true;

  RunStats& operator+=(const RunStats& o) {
    main_busy_s = std::max(main_busy_s, o.main_busy_s);
    main_search += o.main_search;
    replay_search += o.replay_search;
    shards_executed += o.shards_executed;
    replays_stolen += o.replays_stolen;
    fails_recorded += o.fails_recorded;
    fails_discarded_at_record += o.fails_discarded_at_record;
    fails_discarded_at_pop += o.fails_discarded_at_pop;
    fails_dropped_full += o.fails_dropped_full;
    replays += o.replays;
    replays_discarded += o.replays_discarded;
    speculative_replays += o.speculative_replays;
    peak_fail_bytes += o.peak_fail_bytes;
    peak_fail_count += o.peak_fail_count;
    max_peak_fail_bytes = std::max(max_peak_fail_bytes, o.max_peak_fail_bytes);
    max_peak_fail_count = std::max(max_peak_fail_count, o.max_peak_fail_count);
    candidates += o.candidates;
    validated += o.validated;
    dropped_precheck += o.dropped_precheck;
    false_positives += o.false_positives;
    exact_results += o.exact_results;
    relaxed_accepted += o.relaxed_accepted;
    duplicates += o.duplicates;
    instances_lost += o.instances_lost;
    shards_requeued += o.shards_requeued;
    replays_reclaimed += o.replays_reclaimed;
    candidates_revalidated += o.candidates_revalidated;
    peak_queue += o.peak_queue;
    max_peak_queue = std::max(max_peak_queue, o.max_peak_queue);
    estimator_cache_hits += o.estimator_cache_hits;
    estimator_cache_misses += o.estimator_cache_misses;
    estimator_cache_evictions += o.estimator_cache_evictions;
    estimator_cache_restore_evictions += o.estimator_cache_restore_evictions;
    completed = completed && o.completed;
    return *this;
  }
};

}  // namespace dqr::core

#endif  // DQR_CORE_STATS_H_
