#ifndef DQR_CORE_STATS_H_
#define DQR_CORE_STATS_H_

#include <algorithm>
#include <cstdint>

#include "cp/search.h"
#include "obs/histogram.h"

namespace dqr::core {

// The RunStats field table. One X-macro drives the struct definition,
// the cross-instance merge (operator+=), and the Prometheus exporter
// (obs/metrics.cc) — adding a field here gets all three at once, so a
// field can never again be declared but silently dropped by the merge
// (the fate of mrp_updates/mrk_updates under the old hand-written +=).
//
//   X(type, name, init, AGG, "help")
//
// AGG is how operator+= folds the field across instances:
//   SUM   - additive counter
//   MAX   - high-water mark; the cluster is as bad as its worst member
//   AND   - boolean conjunction (completed)
//   QUERY - cluster-level fact assigned once by ExecuteQuery after the
//           merge (wall-clock times); += leaves it untouched
//   SUB   - nested cp::SearchStats, merged with its own +=
//   HIST  - mergeable obs value type (LatencyHistogram /
//           EstimatorAccuracy), merged with its own += (exact: buckets
//           align by construction)
//
// Semantics worth keeping in mind (formerly inline comments):
//  * first_result_s: seconds until a Validator confirmed the first result
//    (exact, or relaxed during relaxation); negative if none.
//  * main_search_s: seconds until every instance finished its main
//    (non-relaxed) search and drained its validator.
//  * main_busy_s: solver time actually spent searching shards (not
//    waiting at the barrier); the min/max spread across per_instance
//    entries is the work-stealing balance metric.
//  * peak_fail_bytes/count and peak_queue are *summed*: across instances
//    that is a cluster-wide footprint upper bound (each component may
//    peak at a different moment), NOT a high-water mark any single
//    component reached. The max_peak_* twins give the worst single
//    component. For the shared fail pool both views coincide and are set
//    once from the pool by ExecuteQuery.
//  * instances_lost / shards_requeued / replays_reclaimed /
//    candidates_revalidated are the failure-recovery audit counters; all
//    zero on a fault-free run.
//  * estimator_cache_*: BoundsCache behaviour of the UDFs this thread
//    ran — hit/miss mix of synopsis lookups, Insert-path evictions, and
//    cold entries displaced so restored fail-state snapshots always land
//    (§4.2).
#define DQR_RUN_STATS_FIELDS(X)                                              \
  X(double, total_s, 0.0, QUERY,                                             \
    "Wall-clock seconds for the whole query")                                \
  X(double, first_result_s, -1.0, QUERY,                                     \
    "Seconds until the first confirmed result; negative if none")            \
  X(double, main_search_s, 0.0, QUERY,                                       \
    "Seconds until the main (non-relaxed) search drained everywhere")        \
  X(double, main_busy_s, 0.0, MAX,                                           \
    "Busiest instance's solver seconds spent searching shards")              \
  X(cp::SearchStats, main_search, {}, SUB,                                   \
    "Main-search tree statistics")                                           \
  X(cp::SearchStats, replay_search, {}, SUB,                                 \
    "Replay-search tree statistics")                                         \
  X(int64_t, shards_executed, 0, SUM,                                        \
    "Shards pulled from the shared pool during main search")                 \
  X(int64_t, replays_stolen, 0, SUM,                                         \
    "Replays of fails recorded by a different instance")                     \
  X(int64_t, fails_recorded, 0, SUM, "Fails recorded into the registry")     \
  X(int64_t, fails_discarded_at_record, 0, SUM,                              \
    "Fails rejected at record time (BRP already above MRP)")                 \
  X(int64_t, fails_discarded_at_pop, 0, SUM,                                 \
    "Fails rejected when popped (MRP improved meanwhile)")                   \
  X(int64_t, fails_dropped_full, 0, SUM,                                     \
    "Fails evicted by the max_recorded_fails cap")                           \
  X(int64_t, replays, 0, SUM, "Fail replays executed")                       \
  X(int64_t, replays_discarded, 0, SUM,                                      \
    "Replays popped but hopeless after re-check")                            \
  X(int64_t, speculative_replays, 0, SUM,                                    \
    "Replays run by the speculative solver")                                 \
  X(int64_t, peak_fail_bytes, 0, SUM,                                        \
    "Summed per-component peak bytes of recorded fail state")                \
  X(int64_t, peak_fail_count, 0, SUM,                                        \
    "Summed per-component peak recorded-fail count")                         \
  X(int64_t, max_peak_fail_bytes, 0, MAX,                                    \
    "Worst single component's peak bytes of recorded fail state")            \
  X(int64_t, max_peak_fail_count, 0, MAX,                                    \
    "Worst single component's peak recorded-fail count")                     \
  X(int64_t, candidates, 0, SUM, "Candidates emitted by solvers")            \
  X(int64_t, validated, 0, SUM, "Candidates exactly evaluated")              \
  X(int64_t, validate_batches, 0, SUM,                                       \
    "Multi-candidate exact-evaluation batches executed")                     \
  X(int64_t, validate_batched_candidates, 0, SUM,                            \
    "Candidates evaluated inside a multi-candidate batch")                   \
  X(int64_t, dropped_precheck, 0, SUM,                                       \
    "Candidates dropped by the pre-validation check")                        \
  X(int64_t, false_positives, 0, SUM,                                        \
    "Validated candidates whose exact penalty was nonzero")                  \
  X(int64_t, exact_results, 0, SUM, "Exact results confirmed")               \
  X(int64_t, relaxed_accepted, 0, SUM,                                       \
    "Relaxed results accepted into the tracked set")                         \
  X(int64_t, duplicates, 0, SUM, "Duplicate results rejected")               \
  X(int64_t, peak_queue, 0, SUM,                                             \
    "Summed per-validator peak queue depth")                                 \
  X(int64_t, max_peak_queue, 0, MAX, "Deepest single validator queue")       \
  X(int64_t, instances_lost, 0, SUM,                                         \
    "Instances declared dead by the lease-timeout detector")                 \
  X(int64_t, shards_requeued, 0, SUM,                                        \
    "In-flight shards of dead instances returned to the pool")               \
  X(int64_t, replays_reclaimed, 0, SUM,                                      \
    "Leased replay fails of dead instances reclaimed")                       \
  X(int64_t, candidates_revalidated, 0, SUM,                                 \
    "Orphaned candidates re-validated by a survivor")                        \
  X(int64_t, estimator_cache_hits, 0, SUM, "BoundsCache hits")               \
  X(int64_t, estimator_cache_misses, 0, SUM, "BoundsCache misses")           \
  X(int64_t, estimator_cache_evictions, 0, SUM,                              \
    "BoundsCache Insert-path evictions")                                     \
  X(int64_t, estimator_cache_restore_evictions, 0, SUM,                      \
    "BoundsCache evictions forced by fail-state Restore")                    \
  X(int64_t, mrp_updates, 0, SUM, "MRP tightenings broadcast")               \
  X(int64_t, mrk_updates, 0, SUM, "MRK tightenings broadcast")               \
  X(int64_t, shared_memo_hits, 0, SUM,                                       \
    "Cross-query shared bounds-memo hits (L2 behind BoundsCache)")           \
  X(int64_t, shared_memo_misses, 0, SUM,                                     \
    "Cross-query shared bounds-memo misses")                                 \
  X(int64_t, shared_memo_evictions, 0, SUM,                                  \
    "Cross-query shared bounds-memo evictions")                              \
  X(int64_t, answer_cache_exact_hits, 0, SUM,                                \
    "Queries answered from the semantic cache by exact fingerprint match")   \
  X(int64_t, answer_cache_subsumption_hits, 0, SUM,                          \
    "Queries answered by subsumption from a looser cached answer")           \
  X(int64_t, answer_cache_warm_starts, 0, SUM,                               \
    "Queries executed with cache-derived warm MRP/MRK bounds")               \
  X(int64_t, pool_tasks, 0, SUM,                                             \
    "Engine loops dispatched onto the shared worker pool")                   \
  X(int64_t, pool_spawn_avoided, 0, SUM,                                     \
    "Pool dispatches served by an already-warm worker (no thread spawn)")    \
  X(int64_t, pool_overflow_spawns, 0, SUM,                                   \
    "Pool dispatches that fell back to a transient overflow thread")         \
  X(double, admission_wait_s, 0.0, QUERY,                                    \
    "Seconds the query waited for admission to the engine session")          \
  X(obs::LatencyHistogram, query_latency, {}, HIST,                          \
    "End-to-end query latency (ns)")                                         \
  X(obs::LatencyHistogram, bound_latency, {}, HIST,                          \
    "Uncached synopsis bounds-query latency (ns); profiled runs only")       \
  X(obs::LatencyHistogram, steal_latency, {}, HIST,                          \
    "Gap between finishing one shard and stealing the next (ns); "           \
    "profiled runs only")                                                    \
  X(obs::LatencyHistogram, admission_wait, {}, HIST,                         \
    "Admission-gate wait latency (ns)")                                      \
  X(obs::EstimatorAccuracy, estimator_accuracy, {}, HIST,                    \
    "Predicted-vs-actual bound tightness per synopsis level; "               \
    "profiled runs only")                                                    \
  X(bool, completed, true, AND,                                              \
    "False iff the run was cancelled (time budget / external cancel)")

// Per-field merge operations, selected by the AGG tag.
#define DQR_STATS_AGG_SUM(name) name += o.name;
#define DQR_STATS_AGG_MAX(name) name = std::max(name, o.name);
#define DQR_STATS_AGG_AND(name) name = name && o.name;
#define DQR_STATS_AGG_QUERY(name) /* assigned once by ExecuteQuery */
#define DQR_STATS_AGG_SUB(name) name += o.name;
#define DQR_STATS_AGG_HIST(name) name += o.name;

// Execution statistics of one refined query, aggregated over all
// instances. Times are wall-clock seconds.
struct RunStats {
#define DQR_STATS_DECLARE(type, name, init, agg, help) type name = init;
  DQR_RUN_STATS_FIELDS(DQR_STATS_DECLARE)
#undef DQR_STATS_DECLARE

  RunStats& operator+=(const RunStats& o) {
#define DQR_STATS_MERGE(type, name, init, agg, help) DQR_STATS_AGG_##agg(name)
    DQR_RUN_STATS_FIELDS(DQR_STATS_MERGE)
#undef DQR_STATS_MERGE
    return *this;
  }
};

}  // namespace dqr::core

#endif  // DQR_CORE_STATS_H_
