#ifndef DQR_CORE_SOLUTION_H_
#define DQR_CORE_SOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dqr::core {

// A validated query result: a bound assignment with its exact
// constraint-function values and refinement scores.
struct Solution {
  std::vector<int64_t> point;
  // Exact f_c values, in the query's constraint order.
  std::vector<double> values;
  // Relaxation penalty RP(r); 0 for results satisfying the original query.
  double rp = 0.0;
  // Rank RK(r); meaningful under rank constraining.
  double rk = 0.0;

  std::string ToString() const;
};

inline std::string Solution::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < point.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(point[i]);
  }
  out += ") f=(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += ") rp=" + std::to_string(rp) + " rk=" + std::to_string(rk);
  return out;
}

}  // namespace dqr::core

#endif  // DQR_CORE_SOLUTION_H_
