#ifndef DQR_CORE_BUNDLE_H_
#define DQR_CORE_BUNDLE_H_

#include <memory>
#include <vector>

#include "cp/constraint.h"
#include "cp/domain.h"
#include "core/fail_registry.h"
#include "searchlight/query.h"

namespace dqr::core {

// One thread's working set of RangeConstraints, instantiated from a
// QuerySpec's function factories. Each solver, validator, and speculative
// solver owns its own bundle; bundles share only the immutable array and
// synopsis underneath.
class ConstraintBundle {
 public:
  explicit ConstraintBundle(const searchlight::QuerySpec& query);

  int size() const { return static_cast<int>(constraints_.size()); }
  cp::RangeConstraint& at(int c) { return *constraints_[static_cast<size_t>(c)]; }
  std::vector<cp::RangeConstraint*> pointers();

  // Evaluates estimates that a lazily recorded fail left unknown, in
  // place (the deferred half of §4.2's lazy fail evaluation).
  void CompleteEstimates(FailRecord* fail);

  // Snapshots every constraint function's reusable state for the box;
  // entries may be null for stateless functions.
  std::vector<std::unique_ptr<cp::FunctionState>> SaveStates(
      const cp::DomainBox& box) const;

  // Clears per-search state on all functions, then re-seeds it from the
  // fail's saved snapshots (no-op entries skipped).
  void RestoreStates(const FailRecord& fail);
  void ClearStates();

  // Restores every constraint's effective bounds to the originals.
  void ResetEffectiveBounds();

  // Exact per-constraint values at a bound assignment (Validator side).
  std::vector<double> EvaluateAll(const std::vector<int64_t>& point);

  // Exact values for a batch of bound assignments: result[i] is
  // EvaluateAll(*points[i]). Each constraint function sees the whole
  // batch at once (ConstraintFunction::EvaluateBatch), letting it share
  // one SIMD pass over the base data; values are identical to the
  // one-at-a-time path.
  std::vector<std::vector<double>> EvaluateAllBatch(
      const std::vector<const std::vector<int64_t>*>& points);

  // Sum of every constraint function's memo-cache counters; folded into
  // the owning thread's RunStats when the bundle retires.
  cp::FunctionMemoStats MemoStats() const;

 private:
  std::vector<std::unique_ptr<cp::RangeConstraint>> constraints_;
};

}  // namespace dqr::core

#endif  // DQR_CORE_BUNDLE_H_
