#include "core/coordinator.h"

namespace dqr::core {

void DelayedBroadcast::Publish(double value) {
  if (delay_us_ <= 0) {
    visible_.store(value, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(
      Pending{Clock::now() + std::chrono::microseconds(delay_us_), value});
}

double DelayedBroadcast::Read() const {
  if (delay_us_ <= 0) return visible_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  while (!pending_.empty() && pending_.front().at <= now) {
    visible_.store(pending_.front().value, std::memory_order_relaxed);
    pending_.pop_front();
  }
  return visible_.load(std::memory_order_relaxed);
}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us)
    : Coordinator(num_instances, k, mode, rank_model, broadcast_delay_us,
                  ResultTracker::Diversity{}) {}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us,
                         ResultTracker::Diversity diversity)
    : num_instances_(num_instances),
      tracker_(k, mode, rank_model, std::move(diversity)),
      mrp_(1.0, broadcast_delay_us),
      mrk_(-std::numeric_limits<double>::infinity(), broadcast_delay_us) {}

bool Coordinator::SkylineDominatesBox(
    const std::vector<double>& corner) const {
  return tracker_.SkylineDominatesBox(corner);
}

void Coordinator::PublishProgress() {
  mrp_.Publish(tracker_.Mrp());
  mrk_.Publish(tracker_.Mrk());
}

void Coordinator::NoteResult() {
  bool expected = false;
  if (have_first_.compare_exchange_strong(expected, true)) {
    first_result_s_.store(clock_.ElapsedSeconds());
  }
}

void Coordinator::ArriveMainSearchDone() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (++barrier_arrived_ >= num_instances_) {
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_arrived_ >= num_instances_; });
}

}  // namespace dqr::core
