#include "core/coordinator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/fail_registry.h"

namespace dqr::core {

void DelayedBroadcast::Publish(double value) {
  if (delay_us_ <= 0) {
    visible_.store(value, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(
      Pending{Clock::now() + std::chrono::microseconds(delay_us_), value});
  if (pending_.size() == 1) {
    next_due_ns_.store(ToNs(pending_.front().at),
                       std::memory_order_release);
  }
}

double DelayedBroadcast::Read() const {
  if (delay_us_ <= 0) return visible_.load(std::memory_order_relaxed);
  // Fast path: nothing pending, or the oldest pending update is not due
  // yet — a pure atomic read, no mutex on the hot MRP/MRK check.
  const int64_t due = next_due_ns_.load(std::memory_order_acquire);
  if (ToNs(Clock::now()) < due) {
    return visible_.load(std::memory_order_relaxed);
  }
  // Slow path (a flip is due): publish every elapsed update.
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  while (!pending_.empty() && pending_.front().at <= now) {
    visible_.store(pending_.front().value, std::memory_order_relaxed);
    pending_.pop_front();
  }
  next_due_ns_.store(pending_.empty() ? kIdle : ToNs(pending_.front().at),
                     std::memory_order_release);
  return visible_.load(std::memory_order_relaxed);
}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us)
    : Coordinator(num_instances, k, mode, rank_model, broadcast_delay_us,
                  ResultTracker::Diversity{}) {}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us,
                         ResultTracker::Diversity diversity)
    : num_instances_(num_instances),
      tracker_(k, mode, rank_model, std::move(diversity)),
      mrp_(1.0, broadcast_delay_us),
      mrk_(-std::numeric_limits<double>::infinity(), broadcast_delay_us),
      heartbeat_ns_(new std::atomic<int64_t>[static_cast<size_t>(
          std::max(1, num_instances))]),
      shard_lease_(static_cast<size_t>(std::max(1, num_instances))),
      state_(static_cast<size_t>(std::max(1, num_instances)),
             InstanceState::kLive),
      main_arrived_flag_(static_cast<size_t>(std::max(1, num_instances)), 0),
      query_arrived_flag_(static_cast<size_t>(std::max(1, num_instances)),
                          0),
      live_count_(num_instances) {
  // Seed every slot with "now" so an instance whose threads are still
  // starting up is not instantly stale.
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  for (int i = 0; i < std::max(1, num_instances); ++i) {
    heartbeat_ns_[static_cast<size_t>(i)].store(now,
                                                std::memory_order_relaxed);
  }
}

void Coordinator::ResetHeartbeats() {
  // Re-seed every slot with "now": lease timeouts must be measured from
  // the moment *this query slot* actually starts running, not from
  // coordinator construction — under a multi-query session a slot can
  // sit in the admission queue long enough that construction-time seeds
  // would look instantly stale to the detector.
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  for (int i = 0; i < std::max(1, num_instances_); ++i) {
    heartbeat_ns_[static_cast<size_t>(i)].store(now,
                                                std::memory_order_relaxed);
  }
}

bool Coordinator::SkylineDominatesBox(
    const std::vector<double>& corner) const {
  return tracker_.SkylineDominatesBox(corner);
}

void Coordinator::PublishProgress() {
  const double mrp = tracker_.Mrp();
  const double mrk = tracker_.Mrk();
  mrp_.Publish(mrp);
  mrk_.Publish(mrk);
  if (!progress_sink_) return;
  // Snapshot the phase outside the lock (tracker state), then emit under
  // progress_mu_: the lock both serializes sink calls and makes each
  // emitted bound strictly better than the previous one of its kind —
  // concurrent validators publishing out of order collapse to a clean
  // monotone stream.
  const bool constraining = tracker_.phase() == QueryPhase::kConstraining;
  std::lock_guard<std::mutex> lock(progress_mu_);
  if (constraining && !emitted_constraining_) {
    emitted_constraining_ = true;
    progress_sink_(
        ProgressEvent{ProgressKind::kPhaseConstraining, 0.0});
  }
  if (mrp < emitted_mrp_) {
    emitted_mrp_ = mrp;
    progress_sink_(ProgressEvent{ProgressKind::kMrp, mrp});
  }
  if (mrk > emitted_mrk_) {
    emitted_mrk_ = mrk;
    progress_sink_(ProgressEvent{ProgressKind::kMrk, mrk});
  }
}

void Coordinator::NoteResult() {
  bool expected = false;
  if (have_first_.compare_exchange_strong(expected, true)) {
    first_result_s_.store(clock_.ElapsedSeconds());
  }
}

void Coordinator::SeedShards(std::vector<cp::IntDomain> shards) {
  std::lock_guard<std::mutex> lock(mu_);
  DQR_CHECK(shards_.empty());
  shards_.assign(shards.begin(), shards.end());
  shards_seeded_ = static_cast<int64_t>(shards_.size());
}

std::optional<cp::IntDomain> Coordinator::PopShard() {
  if (cancelled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.empty()) return std::nullopt;
  cp::IntDomain shard = shards_.front();
  shards_.pop_front();
  return shard;
}

std::optional<cp::IntDomain> Coordinator::PopShard(int instance) {
  std::lock_guard<std::mutex> lock(mu_);
  DQR_CHECK(instance >= 0 && instance < num_instances_);
  // Asking for the next shard completes the previous one: its lease ends
  // whether or not a new shard is available.
  shard_lease_[static_cast<size_t>(instance)].reset();
  if (cancelled() || shards_.empty()) {
    work_cv_.notify_all();  // the cleared lease may complete a barrier
    return std::nullopt;
  }
  cp::IntDomain shard = shards_.front();
  shards_.pop_front();
  shard_lease_[static_cast<size_t>(instance)] = shard;
  return shard;
}

void Coordinator::ArriveMainSearchDone() {
  std::unique_lock<std::mutex> lock(mu_);
  // An instance only arrives after PopShard() handed it nullopt, so the
  // pool is drained (or the query cancelled) by the time the last
  // instance gets here.
  DQR_CHECK(shards_.empty() || cancelled());
  if (++main_arrived_ >= num_instances_) {
    FinishMainLocked();
    return;
  }
  work_cv_.wait(lock, [&] { return main_done_; });
}

bool Coordinator::NoShardLeasedLocked() const {
  for (const auto& lease : shard_lease_) {
    if (lease.has_value()) return false;
  }
  return true;
}

void Coordinator::FinishMainLocked() {
  main_done_ = true;
  main_exact_count_ = tracker_.exact_count();
  work_cv_.notify_all();
}

bool Coordinator::AwaitMainSearchDone(int instance) {
  std::unique_lock<std::mutex> lock(mu_);
  DQR_CHECK(instance >= 0 && instance < num_instances_);
  main_arrived_flag_[static_cast<size_t>(instance)] = 1;
  ++main_arrived_;
  work_cv_.notify_all();
  while (true) {
    if (state_[static_cast<size_t>(instance)] != InstanceState::kLive) {
      // Declared dead while parked here (our arrival was discounted by
      // DeclareDead); release the thread so it can unwind.
      return true;
    }
    if (main_done_) return true;
    if (cancelled()) {
      FinishMainLocked();
      return true;
    }
    if (!shards_.empty() || !orphans_.empty()) {
      // Recovered work reappeared; withdraw and go back to working.
      main_arrived_flag_[static_cast<size_t>(instance)] = 0;
      --main_arrived_;
      return false;
    }
    if (main_arrived_ >= live_count_ && NoShardLeasedLocked()) {
      FinishMainLocked();
      return true;
    }
    work_cv_.wait(lock);
  }
}

int64_t Coordinator::main_exact_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_exact_count_;
}

bool Coordinator::AwaitQueryDone(int instance, bool replaying) {
  std::unique_lock<std::mutex> lock(mu_);
  DQR_CHECK(instance >= 0 && instance < num_instances_);
  query_arrived_flag_[static_cast<size_t>(instance)] = 1;
  ++query_arrived_;
  work_cv_.notify_all();
  while (true) {
    if (state_[static_cast<size_t>(instance)] != InstanceState::kLive) {
      return true;  // dead-at-barrier: see AwaitMainSearchDone
    }
    if (query_done_) return true;
    if (cancelled()) {
      query_done_ = true;
      work_cv_.notify_all();
      return true;
    }
    const bool replay_pending =
        replaying && registry_ != nullptr && registry_->size() > 0;
    if (!orphans_.empty() || replay_pending) {
      query_arrived_flag_[static_cast<size_t>(instance)] = 0;
      --query_arrived_;
      return false;
    }
    const bool leases_out =
        replaying && registry_ != nullptr && registry_->leased_count() > 0;
    if (query_arrived_ >= live_count_ && !leases_out) {
      query_done_ = true;
      work_cv_.notify_all();
      return true;
    }
    // `leases_out` can only clear through Commit/Requeue by a live
    // replayer (whose later arrival notifies) or through the detector
    // reclaiming a dead instance's leases (NotifyWorkChanged).
    work_cv_.wait(lock);
  }
}

void Coordinator::AttachRegistry(FailRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
}

void Coordinator::Heartbeat(int instance) {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  heartbeat_ns_[static_cast<size_t>(instance)].store(
      now, std::memory_order_relaxed);
}

int64_t Coordinator::LastHeartbeatNs(int instance) const {
  return heartbeat_ns_[static_cast<size_t>(instance)].load(
      std::memory_order_relaxed);
}

bool Coordinator::IsMonitorable(int instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_[static_cast<size_t>(instance)] == InstanceState::kLive;
}

bool Coordinator::DeclareDead(int instance) {
  std::lock_guard<std::mutex> lock(mu_);
  DQR_CHECK(instance >= 0 && instance < num_instances_);
  if (state_[static_cast<size_t>(instance)] != InstanceState::kLive) {
    return false;
  }
  state_[static_cast<size_t>(instance)] = InstanceState::kDead;
  --live_count_;
  ++instances_lost_;
  // If the dead instance was parked at a barrier, its arrival no longer
  // counts (the live instances alone must reach quiescence).
  if (main_arrived_flag_[static_cast<size_t>(instance)]) {
    main_arrived_flag_[static_cast<size_t>(instance)] = 0;
    --main_arrived_;
  }
  if (query_arrived_flag_[static_cast<size_t>(instance)]) {
    query_arrived_flag_[static_cast<size_t>(instance)] = 0;
    --query_arrived_;
  }
  // The in-flight shard (if any) goes back to the front of the pool: it
  // was next in line when the dead instance took it.
  auto& lease = shard_lease_[static_cast<size_t>(instance)];
  if (lease.has_value()) {
    shards_.push_front(*lease);
    lease.reset();
    ++shards_requeued_;
  }
  if (live_count_ <= 0) {
    // Nobody left to finish the query.
    cancel_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  return true;
}

void Coordinator::RetireInstance(int instance) {
  std::lock_guard<std::mutex> lock(mu_);
  state_[static_cast<size_t>(instance)] = InstanceState::kRetired;
}

void Coordinator::NotifyWorkChanged() {
  std::lock_guard<std::mutex> lock(mu_);
  work_cv_.notify_all();
}

void Coordinator::DepositOrphans(
    std::vector<searchlight::Candidate> orphans) {
  if (orphans.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (searchlight::Candidate& c : orphans) {
    orphans_.push_back(std::move(c));
  }
  work_cv_.notify_all();
}

std::optional<searchlight::Candidate> Coordinator::PopOrphan() {
  std::lock_guard<std::mutex> lock(mu_);
  if (orphans_.empty()) return std::nullopt;
  searchlight::Candidate c = std::move(orphans_.front());
  orphans_.pop_front();
  return c;
}

int64_t Coordinator::instances_lost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instances_lost_;
}

int64_t Coordinator::shards_requeued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_requeued_;
}

void Coordinator::Cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  work_cv_.notify_all();
}

}  // namespace dqr::core
