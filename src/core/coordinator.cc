#include "core/coordinator.h"

#include <utility>

#include "common/check.h"

namespace dqr::core {

void DelayedBroadcast::Publish(double value) {
  if (delay_us_ <= 0) {
    visible_.store(value, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(
      Pending{Clock::now() + std::chrono::microseconds(delay_us_), value});
  if (pending_.size() == 1) {
    next_due_ns_.store(ToNs(pending_.front().at),
                       std::memory_order_release);
  }
}

double DelayedBroadcast::Read() const {
  if (delay_us_ <= 0) return visible_.load(std::memory_order_relaxed);
  // Fast path: nothing pending, or the oldest pending update is not due
  // yet — a pure atomic read, no mutex on the hot MRP/MRK check.
  const int64_t due = next_due_ns_.load(std::memory_order_acquire);
  if (ToNs(Clock::now()) < due) {
    return visible_.load(std::memory_order_relaxed);
  }
  // Slow path (a flip is due): publish every elapsed update.
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  while (!pending_.empty() && pending_.front().at <= now) {
    visible_.store(pending_.front().value, std::memory_order_relaxed);
    pending_.pop_front();
  }
  next_due_ns_.store(pending_.empty() ? kIdle : ToNs(pending_.front().at),
                     std::memory_order_release);
  return visible_.load(std::memory_order_relaxed);
}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us)
    : Coordinator(num_instances, k, mode, rank_model, broadcast_delay_us,
                  ResultTracker::Diversity{}) {}

Coordinator::Coordinator(int num_instances, int64_t k, ConstrainMode mode,
                         const RankModel* rank_model,
                         int64_t broadcast_delay_us,
                         ResultTracker::Diversity diversity)
    : num_instances_(num_instances),
      tracker_(k, mode, rank_model, std::move(diversity)),
      mrp_(1.0, broadcast_delay_us),
      mrk_(-std::numeric_limits<double>::infinity(), broadcast_delay_us) {}

bool Coordinator::SkylineDominatesBox(
    const std::vector<double>& corner) const {
  return tracker_.SkylineDominatesBox(corner);
}

void Coordinator::PublishProgress() {
  mrp_.Publish(tracker_.Mrp());
  mrk_.Publish(tracker_.Mrk());
}

void Coordinator::NoteResult() {
  bool expected = false;
  if (have_first_.compare_exchange_strong(expected, true)) {
    first_result_s_.store(clock_.ElapsedSeconds());
  }
}

void Coordinator::SeedShards(std::vector<cp::IntDomain> shards) {
  std::lock_guard<std::mutex> lock(shard_mu_);
  DQR_CHECK(shards_.empty());
  shards_.assign(shards.begin(), shards.end());
  shards_seeded_ = static_cast<int64_t>(shards_.size());
}

std::optional<cp::IntDomain> Coordinator::PopShard() {
  if (cancelled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(shard_mu_);
  if (shards_.empty()) return std::nullopt;
  cp::IntDomain shard = shards_.front();
  shards_.pop_front();
  return shard;
}

void Coordinator::ArriveMainSearchDone() {
  {
    // An instance only arrives after PopShard() handed it nullopt, so the
    // pool is drained (or the query cancelled) by the time the last
    // instance gets here.
    std::lock_guard<std::mutex> lock(shard_mu_);
    DQR_CHECK(shards_.empty() || cancelled());
  }
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (++barrier_arrived_ >= num_instances_) {
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_arrived_ >= num_instances_; });
}

}  // namespace dqr::core
