#ifndef DQR_CORE_REFINER_H_
#define DQR_CORE_REFINER_H_

#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "core/solution.h"
#include "core/stats.h"
#include "searchlight/query.h"

namespace dqr::core {

// Outcome of one refined query execution.
struct RunResult {
  // Final results per the model's guarantees (§3): exact results, the
  // best-k by RP after relaxation, the top-k by RK, or the skyline —
  // depending on what the query needed.
  std::vector<Solution> results;
  // Aggregate statistics across the cluster.
  RunStats stats;
  // Per-instance breakdown (index = instance id).
  std::vector<RunStats> per_instance;
  // Trace epoch this query's rings were pinned to (-1 when tracing was
  // off). Lets callers that emit follow-up events (e.g. the semantic
  // cache's session ring) land them in the right process group even when
  // other queries have since begun newer epochs.
  int trace_epoch = -1;
};

// The public entry point of the dynamic query refinement framework: runs a
// search query on a simulated Searchlight cluster, automatically relaxing
// it when it yields fewer than k results and constraining it when it
// yields more (§3, §4).
//
// Example:
//   searchlight::QuerySpec query = ...;   // variables + constraints + k
//   core::RefineOptions options;          // paper defaults
//   auto run = core::ExecuteQuery(query, options);
//   for (const core::Solution& s : run.value().results) { ... }
//
// Returns InvalidArgument for malformed queries/options. The call blocks
// until the query finishes (or its time budget expires, in which case
// stats.completed is false and the partial result is returned).
Result<RunResult> ExecuteQuery(const searchlight::QuerySpec& query,
                               const RefineOptions& options);

}  // namespace dqr::core

#endif  // DQR_CORE_REFINER_H_
