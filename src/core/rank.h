#ifndef DQR_CORE_RANK_H_
#define DQR_CORE_RANK_H_

#include <vector>

#include "common/interval.h"

namespace dqr::core {

// Per-constraint inputs to the ranking model (§3.2).
struct RankSpec {
  // Original query bounds [a, b]. Half-open bounds are closed with the
  // corresponding value_range endpoint for ranking purposes, per §3.2.
  Interval bounds;
  Interval value_range;
  // w_c; negative means "use the default 1/|C^c|". Weights are normalized
  // to sum to 1 over the constrainable set.
  double weight = -1.0;
  bool maximize = true;
  // Whether the constraint belongs to C^c at all.
  bool constrainable = true;
};

// The paper's default scalar ranking:
//
//   RK_c(r) = (b - t)/(b - a) if c is maximized,
//             (t - a)/(b - a) if c is minimized,
//   RK(r)   = 1 - sum_c w_c RK_c(r),   higher is better.
//
// Note on the minimized case: the paper prints (a - t)/(b - a), which is
// negative on [a, b] and would make *worse* minimized values rank higher;
// (t - a)/(b - a) is the form consistent with the stated semantics and
// with every worked example, so that is what we implement (see DESIGN.md).
//
// BestRank() gives the BRK of §4.3: an upper bound on RK over all valid
// solutions in a sub-tree, used by the dynamic constraint BRK >= MRK.
class RankModel {
 public:
  explicit RankModel(std::vector<RankSpec> specs);
  virtual ~RankModel() = default;

  int num_constraints() const { return static_cast<int>(specs_.size()); }
  int num_constrainable() const { return num_constrainable_; }

  // RK_c at value t (t is clamped into the effective bounds).
  double RankComponent(int c, double t) const;

  // RK(r) over exact values.
  virtual double Rank(const std::vector<double>& values) const;

  // BRK: the best possible RK among solutions whose per-constraint values
  // lie in `estimates` *and* satisfy the bounds. Returns
  // -infinity when some estimate is disjoint from its bounds (the
  // sub-tree holds no valid solution).
  virtual double BestRank(const std::vector<Interval>& estimates) const;

  // Values oriented so that "larger is better" on every constrainable
  // coordinate (minimized values are negated) — the vector compared by
  // skyline domination. Non-constrainable constraints are skipped; the
  // output has num_constrainable() entries.
  virtual std::vector<double> OrientForSkyline(
      const std::vector<double>& values) const;

  // Per-coordinate best corners of a sub-tree in skyline orientation
  // (upper bounds of achievable oriented values).
  virtual std::vector<double> BestCornerForSkyline(
      const std::vector<Interval>& estimates) const;

 private:
  struct Effective {
    Interval bounds;  // closed with value-range endpoints
    double weight = 0.0;
    bool maximize = true;
    bool constrainable = true;
  };

  std::vector<Effective> specs_;
  int num_constrainable_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_RANK_H_
