#ifndef DQR_CORE_FAIL_REGISTRY_H_
#define DQR_CORE_FAIL_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "cp/domain.h"
#include "cp/function.h"
#include "core/options.h"

namespace dqr::core {

// Everything saved when a search fail is caught (§4.1): the decision
// variable domains, the constraint estimates observed at the node (some
// possibly unevaluated under lazy recording), which constraints violated,
// and optionally the functions' reusable computation states.
struct FailRecord {
  cp::DomainBox box;
  std::vector<Interval> estimates;
  std::vector<char> evaluated;
  std::vector<int> violated;
  // states[c] is constraint c's saved state or null; empty when state
  // saving is off.
  std::vector<std::unique_ptr<cp::FunctionState>> states;
  // Best possible relaxation penalty of the sub-tree (the replay
  // priority).
  double brp = 0.0;
  int depth = 0;
  int64_t seq = 0;
  // Instance whose solver recorded the fail. With the shared replay pool
  // any instance may replay it; everything replay tightening needs (box,
  // estimates, states, brp) travels in the record, so `origin` is pure
  // provenance for the stolen-replay statistics.
  int origin = 0;

  // Approximate footprint for memory stats.
  int64_t MemoryBytes() const;
};

// The table of recorded fails, ordered for replay (§4.1): a priority queue
// on BRP (kBestFirst) or encounter order (kFifo, the ablated variant).
// Records with BRP above the current MRP are discarded eagerly at record
// time and lazily at pop time ("the MRP might have changed").
//
// Thread-safe: one registry is shared by the whole cluster as the global
// replay pool — every instance's solver records into it and every replayer
// (regular or speculative, on any instance) pops the globally
// most-promising fail, so MRP drops as fast as BRP ordering allows instead
// of each instance being limited to its own fails.
class FailRegistry {
 public:
  FailRegistry(ReplayOrder order, int64_t max_fails);

  // Stores `record` unless its BRP exceeds `mrp` (discarded) or the
  // registry is full (the newcomer is dropped and counted — a memory
  // guard, not expected at normal scale).
  void Record(FailRecord record, double mrp);

  // Removes and returns the next fail whose BRP is still within `mrp`;
  // fails that became hopeless are discarded on the way. nullopt when the
  // registry is exhausted.
  std::optional<FailRecord> Pop(double mrp);

  // --- leased replays (crash recovery; see DESIGN.md §7) ---
  // Like Pop, but the registry keeps ownership: the record moves into an
  // in-flight lease slot for `instance` and the returned pointer stays
  // valid (and exclusively the caller's to touch) until Commit / Requeue /
  // AbandonLease. nullptr when the pool is exhausted. If the instance
  // dies mid-replay its leases are reclaimed into the pool, so no
  // recorded fail is ever lost with the work that was replaying it.
  FailRecord* Lease(double mrp, int instance);
  // Replay finished: destroy the leased record.
  void Commit(int instance, FailRecord* record);
  // Replay interrupted (speculation shutdown): back into the pool.
  void Requeue(int instance, FailRecord* record);
  // Crash unwind: the dying instance relinquishes the lease without
  // destroying it. The record becomes eligible for ReclaimFrom; the
  // caller must not touch it afterwards.
  void AbandonLease(int instance, FailRecord* record);
  // Failure detector: moves `instance`'s abandoned leases back into the
  // pool. Returns how many were reclaimed by this call; leases the dying
  // instance has not abandoned yet are left for a later pass.
  int64_t ReclaimFrom(int instance);

  size_t size() const;
  size_t leased_count() const;
  void Clear();

  // --- statistics ---
  int64_t recorded() const;
  int64_t discarded_at_record() const;
  int64_t discarded_at_pop() const;
  int64_t dropped_full() const;
  int64_t reclaimed() const;
  int64_t peak_size() const;
  int64_t state_bytes() const;
  int64_t peak_state_bytes() const;

 private:
  struct LeaseEntry {
    std::unique_ptr<FailRecord> record;
    bool abandoned = false;
  };

  // Heap position helpers (min-heap on (brp, seq)).
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  static bool Before(const FailRecord& a, const FailRecord& b) {
    return a.brp < b.brp || (a.brp == b.brp && a.seq < b.seq);
  }
  // Pops the next record regardless of MRP; false when empty.
  bool PopAnyLocked(FailRecord* out);
  // Puts a record (back) into the ordered pool, keeping its seq.
  void PushLocked(FailRecord record);
  // Locates instance's lease for `record`; aborts if absent.
  size_t FindLeaseLocked(int instance, const FailRecord* record) const;

  const ReplayOrder order_;
  const int64_t max_fails_;

  mutable std::mutex mu_;
  // kBestFirst: heap_ is a binary min-heap; kFifo: fifo_ in arrival order.
  std::vector<FailRecord> heap_;
  std::deque<FailRecord> fifo_;
  // In-flight replays keyed by instance id.
  std::unordered_map<int, std::vector<LeaseEntry>> leases_;
  size_t leased_count_ = 0;
  int64_t next_seq_ = 0;
  int64_t recorded_ = 0;
  int64_t discarded_at_record_ = 0;
  int64_t discarded_at_pop_ = 0;
  int64_t dropped_full_ = 0;
  int64_t reclaimed_ = 0;
  int64_t peak_size_ = 0;
  int64_t state_bytes_ = 0;
  int64_t peak_state_bytes_ = 0;
};

}  // namespace dqr::core

#endif  // DQR_CORE_FAIL_REGISTRY_H_
