#ifndef DQR_CORE_CANONICAL_H_
#define DQR_CORE_CANONICAL_H_

#include <string>
#include <vector>

#include "core/solution.h"

namespace dqr::core {

// Canonical text form of a result list, the exchange format of every
// determinism check in the repo: the cross-config invariance sweeps, the
// fault-injection differential tests, and the oracle-differential fuzz
// harness all compare these strings byte for byte.
//
// Points print exactly; scores and constraint values print with %.12g,
// which pins 12 significant digits — far below the engine's deterministic
// bit-identical guarantee, far above any real refinement bug — while
// normalizing -0.0 and the inf spellings across platforms.
std::string CanonicalLine(const Solution& solution);

// One CanonicalLine per solution, '\n'-terminated each, in result order.
// The engine's final ordering is itself deterministic, so no re-sorting
// happens here; callers comparing order-free sets should sort first.
std::string Canonicalize(const std::vector<Solution>& results);

// 64-bit FNV-1a of a canonical result string, as 16 lowercase hex
// digits. The serve protocol's FINAL frame carries this next to the full
// canonical body, so a streamed answer is checkable byte-for-byte (and
// cheaply, by fingerprint) against a direct ExecuteQuery run.
std::string CanonicalFingerprint(const std::string& canonical);

}  // namespace dqr::core

#endif  // DQR_CORE_CANONICAL_H_
