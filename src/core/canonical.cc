#include "core/canonical.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace dqr::core {
namespace {

void AppendDouble(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "nan";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "inf" : "-inf";
    return;
  }
  if (v == 0.0) v = 0.0;  // collapse -0.0
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

}  // namespace

std::string CanonicalLine(const Solution& solution) {
  std::string out = "(";
  for (size_t i = 0; i < solution.point.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(solution.point[i]);
  }
  out += ") f=(";
  for (size_t i = 0; i < solution.values.size(); ++i) {
    if (i > 0) out += ",";
    AppendDouble(&out, solution.values[i]);
  }
  out += ") rp=";
  AppendDouble(&out, solution.rp);
  out += " rk=";
  AppendDouble(&out, solution.rk);
  return out;
}

std::string Canonicalize(const std::vector<Solution>& results) {
  std::string out;
  for (const Solution& s : results) {
    out += CanonicalLine(s);
    out += '\n';
  }
  return out;
}

std::string CanonicalFingerprint(const std::string& canonical) {
  // FNV-1a, 64-bit: tiny, dependency-free, and collision-resistant far
  // beyond what an answer-integrity check needs (a mismatch here means a
  // transport bug, not an adversary).
  uint64_t h = 1469598103934665603ULL;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace dqr::core
