#include "core/canonical.h"

#include <cmath>
#include <cstdio>

namespace dqr::core {
namespace {

void AppendDouble(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "nan";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "inf" : "-inf";
    return;
  }
  if (v == 0.0) v = 0.0;  // collapse -0.0
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

}  // namespace

std::string CanonicalLine(const Solution& solution) {
  std::string out = "(";
  for (size_t i = 0; i < solution.point.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(solution.point[i]);
  }
  out += ") f=(";
  for (size_t i = 0; i < solution.values.size(); ++i) {
    if (i > 0) out += ",";
    AppendDouble(&out, solution.values[i]);
  }
  out += ") rp=";
  AppendDouble(&out, solution.rp);
  out += " rk=";
  AppendDouble(&out, solution.rk);
  return out;
}

std::string Canonicalize(const std::vector<Solution>& results) {
  std::string out;
  for (const Solution& s : results) {
    out += CanonicalLine(s);
    out += '\n';
  }
  return out;
}

}  // namespace dqr::core
