#ifndef DQR_CORE_INSTANCE_H_
#define DQR_CORE_INSTANCE_H_

#include <memory>
#include <vector>

#include "cp/domain.h"
#include "core/coordinator.h"
#include "core/fail_registry.h"
#include "core/fault.h"
#include "core/options.h"
#include "core/penalty.h"
#include "core/rank.h"
#include "core/stats.h"
#include "searchlight/candidate.h"
#include "searchlight/query.h"

namespace dqr::exec {
class WorkerPool;
}  // namespace dqr::exec

namespace dqr::core {

// Construction parameters of one simulated Searchlight instance. All
// pointers are borrowed and must outlive the runner.
struct InstanceConfig {
  int id = 0;
  const searchlight::QuerySpec* query = nullptr;
  const RefineOptions* options = nullptr;
  const PenaltyModel* penalty = nullptr;
  const RankModel* rank = nullptr;
  Coordinator* coordinator = nullptr;
  // The cluster-wide replay pool, shared by every instance.
  FailRegistry* registry = nullptr;
  // Deterministic fault injection (null = no faults); shared by the
  // cluster, counters are per (instance, site).
  FaultInjector* injector = nullptr;
  // Spawn the per-instance heartbeat thread (legacy mode with the
  // failure detector on; in pool mode the query slot's timer beats for
  // every instance instead).
  bool run_heartbeat = false;
  // Non-null runs the solver/validator/speculative loops as tasks on
  // this pool instead of dedicated threads (DESIGN.md §10).
  exec::WorkerPool* pool = nullptr;
  // Trace epoch this instance's rings pin to; -1 = the trace's current
  // epoch (fine only while queries never overlap in time).
  int trace_epoch = -1;
};

// One simulated cluster instance: a Solver thread and a Validator thread
// connected by a bounded candidate queue, plus an optional speculative
// relaxation thread (§4.2). The Solver pulls main-search shards from the
// coordinator's shared pool until it drains (morsel-style work stealing),
// then — if the global query still lacks k results — replays the globally
// most-promising recorded fails from the shared registry until it drains.
class InstanceRunner {
 public:
  explicit InstanceRunner(InstanceConfig config);
  ~InstanceRunner();

  InstanceRunner(const InstanceRunner&) = delete;
  InstanceRunner& operator=(const InstanceRunner&) = delete;

  // Spawns the worker threads; call once.
  void Start();
  // Blocks until all threads finish (the validator queue is closed and
  // drained).
  void Join();

  // True once this instance died to an injected crash (its threads stop
  // cooperatively and it no longer touches shared state).
  bool crashed() const;

  // Failure detector hook: removes every candidate this (dead) instance
  // still had queued or in flight, for re-validation elsewhere.
  std::vector<searchlight::Candidate> HarvestOrphans();

  // This instance's statistics; valid after Join().
  RunStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dqr::core

#endif  // DQR_CORE_INSTANCE_H_
