#ifndef DQR_COMMON_LOGGING_H_
#define DQR_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace dqr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the global minimum level emitted to stderr. Default: kWarning, so
// tests and benchmarks stay quiet unless something is wrong. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Redirects formatted log lines (without the trailing newline) to `sink`
// instead of stderr; pass nullptr to restore stderr. The sink is invoked
// under the logging mutex — keep it cheap and never log from within it.
// Intended for tests that assert on log output without scraping stderr.
using LogSink = std::function<void(const std::string& line)>;
void SetLogSink(LogSink sink);

namespace internal {

// Writes one formatted line if `level` passes the filter. The line
// carries a monotonic timestamp (seconds since process start) and a
// small per-thread id: "[I 12.345678 t03 file.cc:42] message".
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

// Stream-style collector used by the DQR_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dqr

// Usage: DQR_LOG(kInfo) << "solver finished, nodes=" << n;
#define DQR_LOG(severity)                                              \
  ::dqr::internal::LogMessage(::dqr::LogLevel::severity, __FILE__,     \
                              __LINE__)                                \
      .stream()

#endif  // DQR_COMMON_LOGGING_H_
