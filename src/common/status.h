#ifndef DQR_COMMON_STATUS_H_
#define DQR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dqr {

// Error categories used across the library. Kept deliberately small: the
// library signals recoverable failures through Status rather than
// exceptions (which are not used anywhere in this codebase).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kCancelled,
  kInternal,
};

// Returns a short stable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error value. Functions that can fail for
// caller-visible reasons return Status (or Result<T> below); programming
// errors are handled by DQR_CHECK and abort.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "Code: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status InternalError(std::string message);

// A value-or-error holder, a minimal stand-in for absl::StatusOr<T>.
// Accessing value() on an error Result aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);` directly, mirroring absl::StatusOr.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Aborts the process with `status` printed; used by Result<T>::value().
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace dqr

#endif  // DQR_COMMON_STATUS_H_
