#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace dqr::simd {
namespace {

bool EnvDisablesSimd() {
  const char* env = std::getenv("DQR_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "scalar") == 0 || std::strcmp(env, "false") == 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled(!EnvDisablesSimd());
  return enabled;
}

}  // namespace

Kernel DetectedKernel() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool have_avx2 = __builtin_cpu_supports("avx2") != 0;
  return have_avx2 ? Kernel::kAvx2 : Kernel::kScalar;
#elif defined(__aarch64__)
  return Kernel::kNeon;  // NEON is baseline on aarch64
#else
  return Kernel::kScalar;
#endif
}

bool SimdEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

Kernel ActiveKernel() {
  return SimdEnabled() ? DetectedKernel() : Kernel::kScalar;
}

std::string KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
  }
  return "unknown";
}

// --- scalar --------------------------------------------------------------

double MinReduceScalar(const double* v, int64_t n) {
  double out = v[0];
  for (int64_t i = 1; i < n; ++i) out = std::min(out, v[i]);
  return out;
}

double MaxReduceScalar(const double* v, int64_t n) {
  double out = v[0];
  for (int64_t i = 1; i < n; ++i) out = std::max(out, v[i]);
  return out;
}

void MinMaxReduceScalar(const double* mn, const double* mx, int64_t n,
                        double* mn_out, double* mx_out) {
  double lo = mn[0];
  double hi = mx[0];
  for (int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, mn[i]);
    hi = std::max(hi, mx[i]);
  }
  *mn_out = lo;
  *mx_out = hi;
}

// --- AVX2 ----------------------------------------------------------------

#if defined(__x86_64__) || defined(_M_X64)

__attribute__((target("avx2"))) double MinReduceAvx2(const double* v,
                                                     int64_t n) {
  if (n < 8) return MinReduceScalar(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  int64_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + i));
  }
  if (i < n) acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + n - 4));
  const __m128d lo128 =
      _mm_min_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  const __m128d lo64 = _mm_min_sd(lo128, _mm_unpackhi_pd(lo128, lo128));
  return _mm_cvtsd_f64(lo64);
}

__attribute__((target("avx2"))) double MaxReduceAvx2(const double* v,
                                                     int64_t n) {
  if (n < 8) return MaxReduceScalar(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  int64_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
  }
  if (i < n) acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + n - 4));
  const __m128d hi128 =
      _mm_max_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  const __m128d hi64 = _mm_max_sd(hi128, _mm_unpackhi_pd(hi128, hi128));
  return _mm_cvtsd_f64(hi64);
}

__attribute__((target("avx2"))) void MinMaxReduceAvx2(const double* mn,
                                                      const double* mx,
                                                      int64_t n,
                                                      double* mn_out,
                                                      double* mx_out) {
  if (n < 8) {
    MinMaxReduceScalar(mn, mx, n, mn_out, mx_out);
    return;
  }
  __m256d lo = _mm256_loadu_pd(mn);
  __m256d hi = _mm256_loadu_pd(mx);
  int64_t i = 4;
  for (; i + 4 <= n; i += 4) {
    lo = _mm256_min_pd(lo, _mm256_loadu_pd(mn + i));
    hi = _mm256_max_pd(hi, _mm256_loadu_pd(mx + i));
  }
  if (i < n) {
    lo = _mm256_min_pd(lo, _mm256_loadu_pd(mn + n - 4));
    hi = _mm256_max_pd(hi, _mm256_loadu_pd(mx + n - 4));
  }
  const __m128d lo128 =
      _mm_min_pd(_mm256_castpd256_pd128(lo), _mm256_extractf128_pd(lo, 1));
  const __m128d hi128 =
      _mm_max_pd(_mm256_castpd256_pd128(hi), _mm256_extractf128_pd(hi, 1));
  *mn_out = _mm_cvtsd_f64(_mm_min_sd(lo128, _mm_unpackhi_pd(lo128, lo128)));
  *mx_out = _mm_cvtsd_f64(_mm_max_sd(hi128, _mm_unpackhi_pd(hi128, hi128)));
}

#endif  // x86_64

// --- NEON ----------------------------------------------------------------

#if defined(__aarch64__)

double MinReduceNeon(const double* v, int64_t n) {
  if (n < 4) return MinReduceScalar(v, n);
  float64x2_t acc = vld1q_f64(v);
  int64_t i = 2;
  for (; i + 2 <= n; i += 2) {
    acc = vminq_f64(acc, vld1q_f64(v + i));
  }
  if (i < n) acc = vminq_f64(acc, vld1q_f64(v + n - 2));
  return vminvq_f64(acc);
}

double MaxReduceNeon(const double* v, int64_t n) {
  if (n < 4) return MaxReduceScalar(v, n);
  float64x2_t acc = vld1q_f64(v);
  int64_t i = 2;
  for (; i + 2 <= n; i += 2) {
    acc = vmaxq_f64(acc, vld1q_f64(v + i));
  }
  if (i < n) acc = vmaxq_f64(acc, vld1q_f64(v + n - 2));
  return vmaxvq_f64(acc);
}

void MinMaxReduceNeon(const double* mn, const double* mx, int64_t n,
                      double* mn_out, double* mx_out) {
  if (n < 4) {
    MinMaxReduceScalar(mn, mx, n, mn_out, mx_out);
    return;
  }
  float64x2_t lo = vld1q_f64(mn);
  float64x2_t hi = vld1q_f64(mx);
  int64_t i = 2;
  for (; i + 2 <= n; i += 2) {
    lo = vminq_f64(lo, vld1q_f64(mn + i));
    hi = vmaxq_f64(hi, vld1q_f64(mx + i));
  }
  if (i < n) {
    lo = vminq_f64(lo, vld1q_f64(mn + n - 2));
    hi = vmaxq_f64(hi, vld1q_f64(mx + n - 2));
  }
  *mn_out = vminvq_f64(lo);
  *mx_out = vmaxvq_f64(hi);
}

#endif  // aarch64

// --- dispatch ------------------------------------------------------------

double MinReduce(const double* v, int64_t n) {
  DQR_CHECK(n >= 1);
  switch (ActiveKernel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Kernel::kAvx2:
      return MinReduceAvx2(v, n);
#endif
#if defined(__aarch64__)
    case Kernel::kNeon:
      return MinReduceNeon(v, n);
#endif
    default:
      return MinReduceScalar(v, n);
  }
}

double MaxReduce(const double* v, int64_t n) {
  DQR_CHECK(n >= 1);
  switch (ActiveKernel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Kernel::kAvx2:
      return MaxReduceAvx2(v, n);
#endif
#if defined(__aarch64__)
    case Kernel::kNeon:
      return MaxReduceNeon(v, n);
#endif
    default:
      return MaxReduceScalar(v, n);
  }
}

void MinMaxReduce(const double* mn, const double* mx, int64_t n,
                  double* mn_out, double* mx_out) {
  DQR_CHECK(n >= 1);
  switch (ActiveKernel()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Kernel::kAvx2:
      MinMaxReduceAvx2(mn, mx, n, mn_out, mx_out);
      return;
#endif
#if defined(__aarch64__)
    case Kernel::kNeon:
      MinMaxReduceNeon(mn, mx, n, mn_out, mx_out);
      return;
#endif
    default:
      MinMaxReduceScalar(mn, mx, n, mn_out, mx_out);
      return;
  }
}

}  // namespace dqr::simd
