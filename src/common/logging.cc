#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dqr {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Serializes lines from concurrent solver/validator threads.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Strip directories for terseness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace internal
}  // namespace dqr
