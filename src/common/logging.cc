#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace dqr {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Serializes lines from concurrent solver/validator threads and guards
// the sink swap.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

LogSink& GlobalSink() {
  static LogSink* sink = new LogSink;
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Seconds since the first log line of the process (steady clock, so the
// offsets line up with trace timestamps even if wall time jumps).
double MonotonicSeconds() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

// Small sequential per-thread ids: easier to eyeball in interleaved
// output than 15-digit native handles.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  GlobalSink() = std::move(sink);
}

namespace internal {

void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Strip directories for terseness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s %.6f t%02d %s:%d] ",
                LevelName(level), MonotonicSeconds(), ThreadId(), base,
                line);
  std::lock_guard<std::mutex> lock(LogMutex());
  if (GlobalSink()) {
    GlobalSink()(prefix + message);
    return;
  }
  std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
}

}  // namespace internal
}  // namespace dqr
