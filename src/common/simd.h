#ifndef DQR_COMMON_SIMD_H_
#define DQR_COMMON_SIMD_H_

#include <cstdint>
#include <string>

namespace dqr::simd {

// Which instruction set the process dispatches min/max reduction kernels
// to. Resolved once at startup from the CPU (AVX2 on x86-64, NEON on
// aarch64) and the DQR_SIMD environment knob; the fuzz harness can flip
// it per case via SetSimdEnabled to prove scalar == SIMD answers.
//
// All kernels are value-identical to the scalar std::min/std::max folds
// for the data this system processes: min/max of a set is independent of
// association order, the inputs contain no NaNs, and -0.0 vs +0.0
// tie-breaking differences compare equal under ==. No kernel touches
// sums — FP addition order is preserved by keeping summation scalar.
enum class Kernel {
  kScalar,
  kAvx2,
  kNeon,
};

// The kernel reductions dispatch to right now (kScalar when SIMD is
// disabled or the CPU lacks the extension).
Kernel ActiveKernel();
std::string KernelName(Kernel kernel);

// The best kernel this CPU supports, ignoring the enable switch.
Kernel DetectedKernel();

// Process-wide enable switch. Initialized from the DQR_SIMD environment
// variable on first use ("off" / "0" / "scalar" / "false" disable);
// SetSimdEnabled overrides it afterwards (used by the fuzz harness's
// `simd` config dimension).
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

// RAII override for one fuzz case / test body.
class ScopedSimdOverride {
 public:
  explicit ScopedSimdOverride(bool enabled)
      : previous_(SimdEnabled()) {
    SetSimdEnabled(enabled);
  }
  ~ScopedSimdOverride() { SetSimdEnabled(previous_); }
  ScopedSimdOverride(const ScopedSimdOverride&) = delete;
  ScopedSimdOverride& operator=(const ScopedSimdOverride&) = delete;

 private:
  bool previous_;
};

// --- dispatched reductions (n >= 1) --------------------------------------

// min / max over the contiguous range v[0, n).
double MinReduce(const double* v, int64_t n);
double MaxReduce(const double* v, int64_t n);

// Fused: *mn_out = min(mn[0, n)), *mx_out = max(mx[0, n)). The two arrays
// are walked in lockstep — the SoA ValueBounds hot path.
void MinMaxReduce(const double* mn, const double* mx, int64_t n,
                  double* mn_out, double* mx_out);

// --- per-ISA entry points (kernel-dispatch tests) ------------------------
// Each is always safe to *link*; calling an unsupported one is undefined
// (guard with DetectedKernel()).

double MinReduceScalar(const double* v, int64_t n);
double MaxReduceScalar(const double* v, int64_t n);
void MinMaxReduceScalar(const double* mn, const double* mx, int64_t n,
                        double* mn_out, double* mx_out);

#if defined(__x86_64__) || defined(_M_X64)
double MinReduceAvx2(const double* v, int64_t n);
double MaxReduceAvx2(const double* v, int64_t n);
void MinMaxReduceAvx2(const double* mn, const double* mx, int64_t n,
                      double* mn_out, double* mx_out);
#endif

#if defined(__aarch64__)
double MinReduceNeon(const double* v, int64_t n);
double MaxReduceNeon(const double* v, int64_t n);
void MinMaxReduceNeon(const double* mn, const double* mx, int64_t n,
                      double* mn_out, double* mx_out);
#endif

}  // namespace dqr::simd

#endif  // DQR_COMMON_SIMD_H_
