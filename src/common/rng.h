#ifndef DQR_COMMON_RNG_H_
#define DQR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace dqr {

// Deterministic, fast PRNG (splitmix64). Used by the data generators and
// property tests so that every data set and workload is reproducible from a
// single seed, independent of the standard library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DQR_CHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextUint64() % span);
  }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // half is discarded to keep the state trivially seedable).
  double NextGaussian();

  // Returns true with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

inline double Rng::NextGaussian() {
  // Rejection-free Box-Muller; avoids log(0) by nudging u1.
  const double u1 = NextDouble() + 1e-18;
  const double u2 = NextDouble();
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace dqr

#endif  // DQR_COMMON_RNG_H_
