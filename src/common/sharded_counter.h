#ifndef DQR_COMMON_SHARDED_COUNTER_H_
#define DQR_COMMON_SHARDED_COUNTER_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace dqr {

// A relaxed event counter sharded across cache lines. Hot-path increments
// land on a per-thread shard (assigned round-robin on first use), so
// concurrent counting from many solver/validator threads never contends on
// one cache line; reads sum the shards. Counts are exact, ordering is
// relaxed — suitable for stats, not for synchronization.
//
// Reset() is not atomic with respect to concurrent Add() calls: increments
// racing with a reset may survive it. Callers reset only in quiescent
// phases (e.g. between benchmark rounds), matching the previous
// single-atomic behaviour.
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(int64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Sum() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kShards = 16;

  // Padded to a cache line so neighbouring shards never false-share.
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };

  // Hot path: one zero-initialized TLS load and a predictable branch —
  // no thread-safe-static guard, no TLS dynamic-init wrapper. The id is
  // stored +1 so that 0 can mean "unassigned".
  static size_t ShardIndex() {
    thread_local uint32_t id_plus_one = 0;
    uint32_t id = id_plus_one;
    if (id == 0) {
      id = next_thread_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      id_plus_one = id;
    }
    return (id - 1) % kShards;
  }

  static inline std::atomic<uint32_t> next_thread_id_{0};

  std::array<Shard, kShards> shards_{};
};

}  // namespace dqr

#endif  // DQR_COMMON_SHARDED_COUNTER_H_
