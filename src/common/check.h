#ifndef DQR_COMMON_CHECK_H_
#define DQR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks for programming errors. These are always on (including
// release builds): the library's correctness arguments (sound pruning,
// top-k guarantees) rely on these invariants, and the cost is negligible
// relative to search work.

#define DQR_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DQR_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define DQR_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DQR_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // DQR_COMMON_CHECK_H_
