#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dqr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dqr
