#ifndef DQR_COMMON_INTERVAL_H_
#define DQR_COMMON_INTERVAL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <string>

#include "common/check.h"

namespace dqr {

// A closed real interval [lo, hi]. The workhorse of synopsis-based
// estimation: every constraint function reports its possible values over a
// sub-tree as an Interval, and pruning/penalty logic operates on these.
//
// An interval with lo > hi is "empty"; Empty() constructs the canonical
// empty interval. Infinite endpoints are allowed (half-open constraints).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {}

  static Interval Point(double v) { return Interval(v, v); }
  static Interval Empty() {
    return Interval(std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity());
  }
  static Interval All() {
    return Interval(-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
  }

  bool empty() const { return lo > hi; }
  bool IsPoint() const { return lo == hi; }
  double width() const { return empty() ? 0.0 : hi - lo; }
  double mid() const { return 0.5 * (lo + hi); }

  bool Contains(double v) const { return !empty() && lo <= v && v <= hi; }
  bool Contains(const Interval& o) const {
    return o.empty() || (!empty() && lo <= o.lo && o.hi <= hi);
  }
  bool Intersects(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }

  Interval Intersect(const Interval& o) const {
    if (empty() || o.empty()) return Empty();
    return Interval(std::max(lo, o.lo), std::min(hi, o.hi));
  }
  Interval Union(const Interval& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Interval(std::min(lo, o.lo), std::max(hi, o.hi));
  }

  // Distance from value `v` to this interval (0 if contained).
  double DistanceTo(double v) const {
    DQR_CHECK(!empty());
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0.0;
  }

  // Minimum distance between any point of `o` and this interval; 0 if they
  // intersect. Used for best-case relaxation distances (BRP).
  double DistanceTo(const Interval& o) const {
    DQR_CHECK(!empty() && !o.empty());
    if (Intersects(o)) return 0.0;
    return o.hi < lo ? lo - o.hi : o.lo - hi;
  }

  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return (a.empty() && b.empty()) || (a.lo == b.lo && a.hi == b.hi);
  }
};

// Interval arithmetic. All operations are conservative: the result contains
// f(a, b) for all a in `a`, b in `b`.
inline Interval operator+(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval(a.lo + b.lo, a.hi + b.hi);
}
inline Interval operator-(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval(a.lo - b.hi, a.hi - b.lo);
}
inline Interval operator*(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  const double p1 = a.lo * b.lo, p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo, p4 = a.hi * b.hi;
  return Interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4)));
}

inline Interval Min(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
}
inline Interval Max(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
}
inline Interval Abs(const Interval& a) {
  if (a.empty()) return Interval::Empty();
  if (a.lo >= 0) return a;
  if (a.hi <= 0) return Interval(-a.hi, -a.lo);
  return Interval(0.0, std::max(-a.lo, a.hi));
}

inline std::string Interval::ToString() const {
  if (empty()) return "[empty]";
  std::string out;
  out.reserve(32);
  out += '[';
  out += std::to_string(lo);
  out += ", ";
  out += std::to_string(hi);
  out += ']';
  return out;
}

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.ToString();
}

}  // namespace dqr

#endif  // DQR_COMMON_INTERVAL_H_
