#include "obs/json_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dqr::obs::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    Value v;
    if (Status s = ParseValue(v); !s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing content");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out.kind = Value::kString;
      return ParseString(out.str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(Value& out) {
    out.kind = Value::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      if (Status s = ParseString(key); !s.ok()) return s;
      if (!Consume(':')) return Error("expected ':'");
      Value value;
      if (Status s = ParseValue(value); !s.ok()) return s;
      out.obj.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Value& out) {
    out.kind = Value::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::Ok();
    while (true) {
      Value value;
      if (Status s = ParseValue(value); !s.ok()) return s;
      out.arr.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // The writers in this repo never emit non-ASCII; anything else
          // decodes to '?' rather than growing a full UTF-16 decoder.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(Value& out) {
    auto match = [&](const char* kw) {
      const size_t n = std::string(kw).size();
      if (text_.compare(pos_, n, kw) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out.kind = Value::kBool;
      out.boolean = true;
      return Status::Ok();
    }
    if (match("false")) {
      out.kind = Value::kBool;
      out.boolean = false;
      return Status::Ok();
    }
    if (match("null")) {
      out.kind = Value::kNull;
      return Status::Ok();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(Value& out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    out.kind = Value::kNumber;
    char* end = nullptr;
    out.number = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) return Error("malformed number");
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  return Parser(text).Run();
}

double NumberOr(const Value* v, double fallback) {
  return v != nullptr && v->kind == Value::kNumber ? v->number : fallback;
}

void AppendQuoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace dqr::obs::json
