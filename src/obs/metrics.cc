#include "obs/metrics.h"

#include <cstdio>

namespace dqr::obs {
namespace {

// Prometheus metric type per aggregation category: additive fields are
// counters, everything else (high-water marks, cluster-level facts,
// booleans) a gauge.
constexpr const char* kTypeSUM = "counter";
constexpr const char* kTypeMAX = "gauge";
constexpr const char* kTypeAND = "gauge";
constexpr const char* kTypeQUERY = "gauge";
constexpr const char* kTypeSUB = "counter";

void EmitSample(std::string& out, const std::string& name,
                const char* help, const char* type,
                const std::string& labels, double value) {
  AppendMetricSample(out, name, help, type, labels, value);
}

void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, double v) {
  EmitSample(out, name, help, type, labels, v);
}
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, int64_t v) {
  EmitSample(out, name, help, type, labels, static_cast<double>(v));
}
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, bool v) {
  EmitSample(out, name, help, type, labels, v ? 1.0 : 0.0);
}
// Nested search-tree stats expand to one sample per sub-field.
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels,
               const cp::SearchStats& s) {
  const std::string base = name;
  const std::string h = help;
  EmitSample(out, base + "_nodes", (h + ": nodes expanded").c_str(), type,
             labels, static_cast<double>(s.nodes));
  EmitSample(out, base + "_fails", (h + ": failed nodes").c_str(), type,
             labels, static_cast<double>(s.fails));
  EmitSample(out, base + "_leaves", (h + ": solution leaves").c_str(),
             type, labels, static_cast<double>(s.leaves));
  EmitSample(out, base + "_monitor_prunes",
             (h + ": monitor-pruned nodes").c_str(), type, labels,
             static_cast<double>(s.monitor_prunes));
  EmitSample(out, base + "_completed", (h + ": ran to completion").c_str(),
             "gauge", labels, s.completed ? 1.0 : 0.0);
}

}  // namespace

std::string MetricsSnapshot(const core::RunStats& stats,
                            const std::string& labels) {
  std::string out;
  out.reserve(8192);
#define DQR_METRICS_EMIT(type, name, init, agg, help) \
  EmitField(out, #name, help, kType##agg, labels, stats.name);
  DQR_RUN_STATS_FIELDS(DQR_METRICS_EMIT)
#undef DQR_METRICS_EMIT
  return out;
}

void AppendMetricSample(std::string& out, const std::string& name,
                        const std::string& help, const std::string& type,
                        const std::string& labels, double value) {
  out += "# HELP dqr_" + name + " ";
  out += help;
  out += "\n# TYPE dqr_" + name + " ";
  out += type;
  out += "\ndqr_" + name;
  if (!labels.empty()) out += "{" + labels + "}";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.17g\n", value);
  out += buf;
}

}  // namespace dqr::obs
