#include "obs/metrics.h"

#include <cstdio>

namespace dqr::obs {
namespace {

// Prometheus metric type per aggregation category: additive fields are
// counters, everything else (high-water marks, cluster-level facts,
// booleans) a gauge.
constexpr const char* kTypeSUM = "counter";
constexpr const char* kTypeMAX = "gauge";
constexpr const char* kTypeAND = "gauge";
constexpr const char* kTypeQUERY = "gauge";
constexpr const char* kTypeSUB = "counter";
constexpr const char* kTypeHIST = "histogram";

std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void EmitSample(std::string& out, const std::string& name,
                const char* help, const char* type,
                const std::string& labels, double value) {
  AppendMetricSample(out, name, help, type, labels, value);
}

void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, double v) {
  EmitSample(out, name, help, type, labels, v);
}
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, int64_t v) {
  EmitSample(out, name, help, type, labels, static_cast<double>(v));
}
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels, bool v) {
  EmitSample(out, name, help, type, labels, v ? 1.0 : 0.0);
}
// Nested search-tree stats expand to one sample per sub-field.
void EmitField(std::string& out, const char* name, const char* help,
               const char* type, const std::string& labels,
               const cp::SearchStats& s) {
  const std::string base = name;
  const std::string h = help;
  EmitSample(out, base + "_nodes", (h + ": nodes expanded").c_str(), type,
             labels, static_cast<double>(s.nodes));
  EmitSample(out, base + "_fails", (h + ": failed nodes").c_str(), type,
             labels, static_cast<double>(s.fails));
  EmitSample(out, base + "_leaves", (h + ": solution leaves").c_str(),
             type, labels, static_cast<double>(s.leaves));
  EmitSample(out, base + "_monitor_prunes",
             (h + ": monitor-pruned nodes").c_str(), type, labels,
             static_cast<double>(s.monitor_prunes));
  EmitSample(out, base + "_completed", (h + ": ran to completion").c_str(),
             "gauge", labels, s.completed ? 1.0 : 0.0);
}

// Latency histograms render in the native Prometheus histogram format:
// cumulative _bucket{le="<seconds>"} samples (only buckets that gained
// counts, plus the mandatory +Inf), then _sum (seconds) and _count.
// `type` is ignored — the field table marks these HIST, which is always
// the histogram exposition.
void EmitField(std::string& out, const char* name, const char* help,
               const char* /*type*/, const std::string& labels,
               const LatencyHistogram& h) {
  AppendLatencyHistogram(out, name, help, labels, h);
}

// Estimator accuracy expands to per-level labeled gauges; levels that
// saw no samples are skipped.
void EmitField(std::string& out, const char* name, const char* help,
               const char* /*type*/, const std::string& labels,
               const EstimatorAccuracy& a) {
  const std::string base = name;
  const std::string h = help;
  for (int i = 0; i < EstimatorAccuracy::kMaxLevels; ++i) {
    const EstimatorAccuracy::Level& l = a.level(i);
    if (l.samples == 0) continue;
    std::string lv = "level=\"" + std::to_string(i) + "\"";
    if (!labels.empty()) lv = labels + "," + lv;
    const double n = static_cast<double>(l.samples);
    EmitSample(out, base + "_samples",
               (h + ": validated candidates at this level").c_str(),
               "gauge", lv, n);
    EmitSample(out, base + "_contained_ratio",
               (h + ": fraction with actual inside predicted").c_str(),
               "gauge", lv, static_cast<double>(l.contained) / n);
    EmitSample(out, base + "_wasted_ratio",
               (h + ": fraction validated yet penalized (estimator "
                    "failed to prune)")
                   .c_str(),
               "gauge", lv, static_cast<double>(l.wasted) / n);
    EmitSample(out, base + "_mean_width",
               (h + ": mean predicted width / value range").c_str(),
               "gauge", lv, l.width_sum / n);
    EmitSample(out, base + "_mean_abs_err",
               (h + ": mean |actual - midpoint| / value range").c_str(),
               "gauge", lv, l.abs_err_sum / n);
  }
}

}  // namespace

std::string MetricsSnapshot(const core::RunStats& stats,
                            const std::string& labels) {
  std::string out;
  out.reserve(8192);
#define DQR_METRICS_EMIT(type, name, init, agg, help) \
  EmitField(out, #name, help, kType##agg, labels, stats.name);
  DQR_RUN_STATS_FIELDS(DQR_METRICS_EMIT)
#undef DQR_METRICS_EMIT
  return out;
}

void AppendLatencyHistogram(std::string& out, const std::string& name,
                            const std::string& help,
                            const std::string& labels,
                            const LatencyHistogram& h) {
  const std::string full = "dqr_" + name;
  out += "# HELP " + full + " ";
  out += help;
  out += "\n# TYPE " + full + " histogram\n";
  int64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t c = h.bucket_count(i);
    if (c == 0) continue;
    cumulative += c;
    // The bucket's upper bound is the next bucket's lower bound.
    const double le_s =
        i + 1 < LatencyHistogram::kNumBuckets
            ? static_cast<double>(LatencyHistogram::BucketLowerBound(i + 1)) /
                  1e9
            : static_cast<double>(h.max_ns()) / 1e9;
    out += full + "_bucket{";
    if (!labels.empty()) out += labels + ",";
    out += "le=\"" + FormatValue(le_s) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += full + "_bucket{";
  if (!labels.empty()) out += labels + ",";
  out += "le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
  out += full + "_sum";
  if (!labels.empty()) out += "{" + labels + "}";
  out += ' ';
  out += FormatValue(static_cast<double>(h.sum_ns()) / 1e9);
  out += '\n';
  out += full + "_count";
  if (!labels.empty()) out += "{" + labels + "}";
  out += ' ';
  out += std::to_string(h.count());
  out += '\n';
}

void AppendMetricSample(std::string& out, const std::string& name,
                        const std::string& help, const std::string& type,
                        const std::string& labels, double value) {
  out += "# HELP dqr_" + name + " ";
  out += help;
  out += "\n# TYPE dqr_" + name + " ";
  out += type;
  out += "\ndqr_" + name;
  if (!labels.empty()) out += "{" + labels + "}";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.17g\n", value);
  out += buf;
}

}  // namespace dqr::obs
