#ifndef DQR_OBS_HISTOGRAM_H_
#define DQR_OBS_HISTOGRAM_H_

// Log-bucketed HDR latency histograms and estimator-accuracy tracking
// (DESIGN.md §12).
//
// Both types are plain mergeable value types embedded in core::RunStats
// through the DQR_RUN_STATS_FIELDS X-macro, so they ride the existing
// per-thread stats discipline: each engine thread records into its own
// RunStats copy (single writer, no locks — the "lock-free per-thread"
// contract), and the cross-instance operator+= merge folds them after
// Join(). Everything here is header-only because core/stats.h is
// header-only and dqr_obs must stay dependent only on dqr_common; the
// codec/format helpers that need a .cc live in histogram.cc.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace dqr::obs {

// A fixed-footprint log-bucketed histogram of non-negative int64 values
// (nanoseconds by convention). The bucketing is HdrHistogram-style:
// values below 2^kSubBucketBits are exact; above that, each power-of-two
// range splits into kSubBuckets sub-buckets, so the relative quantile
// error is bounded by 1/kSubBuckets (~6%) at any magnitude. Values above
// ~1.2 hours saturate into the top bucket; counts saturate at INT64_MAX.
//
// Merging two histograms (operator+=) is exact: buckets are aligned by
// construction, so quantiles of a merge equal quantiles of the combined
// sample stream (within bucket resolution).
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  // Exponent cap: values >= 2^42 ns (~1.2 h) land in the last bucket.
  static constexpr int kMaxExponent = 42;
  static constexpr int kNumBuckets =
      kSubBuckets + (kMaxExponent - kSubBucketBits) * kSubBuckets;

  void Record(int64_t value_ns) { RecordMany(value_ns, 1); }
  void RecordSeconds(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    const double ns = seconds * 1e9;
    Record(ns >= 9.0e18 ? std::numeric_limits<int64_t>::max()
                        : static_cast<int64_t>(ns));
  }
  // Bulk insert: `n` observations of `value_ns` (n <= 0 is a no-op).
  // Counts saturate instead of wrapping, so a merge of saturated
  // histograms stays well-defined (and still saturated).
  void RecordMany(int64_t value_ns, int64_t n) {
    if (n <= 0) return;
    if (value_ns < 0) value_ns = 0;
    buckets_[BucketIndex(value_ns)] =
        SaturatingAdd(buckets_[BucketIndex(value_ns)], n);
    count_ = SaturatingAdd(count_, n);
    sum_ns_ = SaturatingAdd(sum_ns_, SaturatingMul(value_ns, n));
    max_ns_ = std::max(max_ns_, value_ns);
  }

  LatencyHistogram& operator+=(const LatencyHistogram& o) {
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[i] = SaturatingAdd(buckets_[i], o.buckets_[i]);
    }
    count_ = SaturatingAdd(count_, o.count_);
    sum_ns_ = SaturatingAdd(sum_ns_, o.sum_ns_);
    max_ns_ = std::max(max_ns_, o.max_ns_);
    return *this;
  }

  bool empty() const { return count_ == 0; }
  int64_t count() const { return count_; }
  int64_t sum_ns() const { return sum_ns_; }
  int64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }

  // The smallest recorded-value bucket whose cumulative count reaches
  // q * count(), reported as the bucket's lower bound (a value that was
  // <= the true quantile; relative error bounded by 1/kSubBuckets).
  // q outside [0, 1] is clamped; an empty histogram reports 0.
  int64_t ValueAtQuantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Ceil without overflow: rank in [1, count_].
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) {
      ++rank;
    }
    rank = std::clamp<int64_t>(rank, 1, count_);
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen = SaturatingAdd(seen, buckets_[i]);
      if (seen >= rank) return std::min(BucketLowerBound(i), max_ns_);
    }
    return max_ns_;
  }
  int64_t p50_ns() const { return ValueAtQuantile(0.50); }
  int64_t p95_ns() const { return ValueAtQuantile(0.95); }
  int64_t p99_ns() const { return ValueAtQuantile(0.99); }

  int64_t bucket_count(int index) const { return buckets_[index]; }

  // Codec back door (DecodeHistogram): bucket replay reproduces counts
  // exactly but rounds sum/max to bucket lower bounds; the encoded exact
  // totals are restored through this.
  void OverrideTotals(int64_t sum_ns, int64_t max_ns) {
    sum_ns_ = sum_ns;
    max_ns_ = max_ns;
  }

  // Lowest value that maps into bucket `index` — also the exposition's
  // bucket label. The first kSubBuckets buckets are exact small values.
  static int64_t BucketLowerBound(int index) {
    if (index < kSubBuckets) return index;
    const int chunk = index / kSubBuckets - 1;
    const int sub = index % kSubBuckets;
    // First bucket of chunk c covers [2^(kSubBucketBits + c), ...).
    return (int64_t{1} << (kSubBucketBits + chunk)) +
           (static_cast<int64_t>(sub) << chunk);
  }

  static int BucketIndex(int64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    int msb = 63;
    while (((v >> msb) & 1) == 0) --msb;
    if (msb >= kMaxExponent) return kNumBuckets - 1;
    const int chunk = msb - kSubBucketBits;  // >= 0
    const int sub =
        static_cast<int>((v >> chunk) & (kSubBuckets - 1));
    return kSubBuckets + chunk * kSubBuckets + sub;
  }

 private:
  static int64_t SaturatingAdd(int64_t a, int64_t b) {
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    return a > kMax - b ? kMax : a + b;
  }
  static int64_t SaturatingMul(int64_t a, int64_t n) {
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    if (a == 0 || n == 0) return 0;
    return a > kMax / n ? kMax : a * n;
  }

  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ns_ = 0;
  int64_t max_ns_ = 0;
};

// Predicted-vs-actual bound tightness of the synopsis estimator, tracked
// per synopsis level by the validator (the only place both the estimate
// interval and the exact value exist side by side). Two calibration
// signals per level:
//  * mean predicted-interval width, normalized by the function's value
//    range — how loose the estimator was at that level;
//  * mean |actual - interval midpoint| / range — how far the truth sat
//    from the interval's center (0 = perfectly centered estimates).
// Plus the containment rate (a sound estimator must always contain the
// actual value — a drop below 1.0 is a bug signal) and the
// wasted-candidate rate (candidates whose exact penalty was nonzero:
// validation work the estimator failed to prune).
class EstimatorAccuracy {
 public:
  // Levels at or above the cap fold into the last slot; level < 0
  // (function without level attribution) folds into slot 0.
  static constexpr int kMaxLevels = 8;

  struct Level {
    int64_t samples = 0;
    int64_t contained = 0;
    int64_t wasted = 0;
    double width_sum = 0.0;    // sum of normalized predicted widths
    double abs_err_sum = 0.0;  // sum of normalized |actual - midpoint|
  };

  void Record(int level, double predicted_lo, double predicted_hi,
              double actual, double value_range_width, bool wasted) {
    Level& slot = levels_[SlotFor(level)];
    ++slot.samples;
    if (predicted_lo <= actual && actual <= predicted_hi) ++slot.contained;
    if (wasted) ++slot.wasted;
    const double range =
        value_range_width > 0.0 && std::isfinite(value_range_width)
            ? value_range_width
            : 1.0;
    slot.width_sum += (predicted_hi - predicted_lo) / range;
    const double mid = 0.5 * (predicted_lo + predicted_hi);
    const double err = actual > mid ? actual - mid : mid - actual;
    slot.abs_err_sum += err / range;
  }

  EstimatorAccuracy& operator+=(const EstimatorAccuracy& o) {
    for (int i = 0; i < kMaxLevels; ++i) {
      levels_[i].samples += o.levels_[i].samples;
      levels_[i].contained += o.levels_[i].contained;
      levels_[i].wasted += o.levels_[i].wasted;
      levels_[i].width_sum += o.levels_[i].width_sum;
      levels_[i].abs_err_sum += o.levels_[i].abs_err_sum;
    }
    return *this;
  }

  bool empty() const {
    for (const Level& l : levels_) {
      if (l.samples != 0) return false;
    }
    return true;
  }
  int64_t total_samples() const {
    int64_t n = 0;
    for (const Level& l : levels_) n += l.samples;
    return n;
  }
  const Level& level(int i) const { return levels_[SlotFor(i)]; }

  // Codec back door (profile JSON): restores one level slot verbatim.
  void OverrideLevel(int i, const Level& l) { levels_[SlotFor(i)] = l; }

  static int SlotFor(int level) {
    return std::clamp(level, 0, kMaxLevels - 1);
  }

 private:
  std::array<Level, kMaxLevels> levels_{};
};

// --- formatting / codec (histogram.cc) -------------------------------

// "count=12 mean=1.2ms p50=900us p95=3.1ms p99=8ms max=9.7ms"; "empty"
// when no samples.
std::string FormatLatencySummary(const LatencyHistogram& h);

// Human unit formatting of a nanosecond quantity ("871ns", "14.2us",
// "1.2ms", "3.4s").
std::string FormatNs(double ns);

// Compact sparse codec: "count;sum;max;idx:cnt,idx:cnt,..." — exact
// round trip of every bucket, used by the profile JSON. DecodeHistogram
// fails (returns false) on malformed input.
std::string EncodeHistogram(const LatencyHistogram& h);
bool DecodeHistogram(const std::string& text, LatencyHistogram* out);

// --- per-thread bound-latency sink -----------------------------------
//
// The synopsis miss paths live in dqr_searchlight, which cannot see
// core::RunStats; the engine threads that own the stats install a
// thread-local sink instead, and the miss paths record into whatever is
// installed (nothing, in the common profile-off case: one TLS load and a
// predicted branch).
LatencyHistogram* ThreadLatencySink();

class ScopedLatencySink {
 public:
  explicit ScopedLatencySink(LatencyHistogram* sink);
  ~ScopedLatencySink();
  ScopedLatencySink(const ScopedLatencySink&) = delete;
  ScopedLatencySink& operator=(const ScopedLatencySink&) = delete;

 private:
  LatencyHistogram* previous_;
};

// Times one scope into the installed per-thread sink. With no sink
// installed (the profile-off case) the constructor is a single TLS load
// and the destructor one predicted branch — no clock calls.
//
// With a sink installed, only 1-in-kSamplePeriod scopes per thread are
// timed (the first one always is): a clock read costs about as much as
// the ~25 ns synopsis probe this timer wraps, so timing every scope
// would double the hottest path in the engine. Uniform thinning leaves
// the quantiles intact; only count() reads as samples, not calls.
class ScopedSinkTimer {
 public:
  static constexpr uint64_t kSamplePeriod = 64;  // power of two

  ScopedSinkTimer();
  ~ScopedSinkTimer();
  ScopedSinkTimer(const ScopedSinkTimer&) = delete;
  ScopedSinkTimer& operator=(const ScopedSinkTimer&) = delete;

 private:
  LatencyHistogram* sink_;
  int64_t start_ns_;
};

}  // namespace dqr::obs

#endif  // DQR_OBS_HISTOGRAM_H_
