#ifndef DQR_OBS_PROFILE_H_
#define DQR_OBS_PROFILE_H_

// Per-query hierarchical profiler (DESIGN.md §12).
//
// A QueryProfile is assembled *after* the query from the flight-recorder
// rings: the engine never records into profile structures on the hot
// path. The attribution tree is phase → site → instance:
//
//   query                      wall-clock envelope
//     collecting               coordinator phase (from t=0)
//       shard_execute          site = trace event name
//         i0/solver            instance/role leaf: count, busy, max
//         i1/solver
//       validate
//         i0/validator
//     constraining | relaxing  phases opened by the phase_* instants
//       ...
//
// Span events contribute count/busy/max at the leaf; instants and
// counters (mrp/mrk updates, cache outcomes, shard pickups) contribute
// counts only. Interior nodes aggregate their children, so a phase's
// "busy" is summed across threads and may exceed wall time — that is the
// point: it is the parallel work the phase absorbed. Events are
// attributed to the phase that was current when their span *began*;
// unbalanced spans (ring overwrote the matching Begin or the End never
// came) are dropped deterministically.
//
// The embedded core::RunStats carries everything the tree cannot: the
// latency histograms (query/bound/steal/admission), the
// estimator-accuracy ledger, and every engine counter — serialized
// through the same DQR_RUN_STATS_FIELDS X-macro that drives the struct,
// so the JSON codec can never drift from the field table.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/stats.h"
#include "obs/trace.h"

namespace dqr::obs {

// One node of the attribution tree. `count` is spans closed (or instants
// seen), `total_ns` summed span duration ("busy"), `max_ns` the longest
// single span.
struct ProfileNode {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
  std::vector<ProfileNode> children;

  // Find-or-append; appended children keep first-encounter order.
  ProfileNode& Child(const std::string& child_name);
  const ProfileNode* Find(const std::string& child_name) const;
};

// The complete per-query profile: attribution tree + engine stats +
// flight-recorder accounting (dropped > 0 means the tree undercounts).
struct QueryProfile {
  ProfileNode root;  // name "query"; total_ns = wall time
  core::RunStats stats;
  int64_t trace_emitted = 0;
  int64_t trace_dropped = 0;
};

// Builds the tree from the rings of `trace` that belong to query `epoch`.
QueryProfile AssembleProfile(const Trace& trace, int epoch,
                             const core::RunStats& stats);

// JSON codec: exact round trip (tree, every RunStats field, histogram
// buckets). The wire format is versioned; FromJson rejects documents it
// does not understand rather than guessing.
std::string ProfileToJson(const QueryProfile& p);
Result<QueryProfile> ProfileFromJson(const std::string& text);

// Pretty tree report (dqr_profile, serve EXPLAIN): attribution tree,
// latency summaries, estimator-accuracy table, nonzero counters.
std::string FormatProfile(const QueryProfile& p);

// Regression-triage diff: per-path busy deltas, latency-quantile deltas,
// counter deltas, each with a percent change ("dqr_profile --diff A B").
std::string DiffProfiles(const QueryProfile& a, const QueryProfile& b);

// The engine-facing sink (`RefineOptions::profile`). Owns a private
// Trace so profiling works with or without a caller-supplied trace:
// when RefineOptions::trace is null, ExecuteQuery records into
// internal_trace() and assembles from it; when the caller passed a
// trace, that one is used for both tracing and profiling. Assembly is
// coordinator-side, after Join — record/Assemble must not race.
class Profile {
 public:
  Profile();
  ~Profile();
  Profile(const Profile&) = delete;
  Profile& operator=(const Profile&) = delete;

  Trace& internal_trace() { return *trace_; }

  void Assemble(const Trace& trace, int epoch, const core::RunStats& stats) {
    profile_ = AssembleProfile(trace, epoch, stats);
  }

  // Post-assembly stamp for stats measured outside the engine (the
  // session layer times admission around ExecuteQuery).
  void RecordAdmissionWait(double seconds) {
    profile_.stats.admission_wait_s = seconds;
    profile_.stats.admission_wait.RecordSeconds(seconds);
  }

  const QueryProfile& query() const { return profile_; }

 private:
  std::unique_ptr<Trace> trace_;
  QueryProfile profile_;
};

}  // namespace dqr::obs

#endif  // DQR_OBS_PROFILE_H_
