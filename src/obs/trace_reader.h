#ifndef DQR_OBS_TRACE_READER_H_
#define DQR_OBS_TRACE_READER_H_

// Loader + schema checker + analyzer for the Chrome trace_event JSON the
// exporter writes. Self-contained (a minimal JSON parser lives in the
// .cc), so tools/dqr_trace and the golden tests need no external JSON
// dependency. Only the subset the exporter emits is understood; the
// checker is deliberately strict so a malformed exporter change fails CI.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dqr::obs {

// One non-metadata trace_event record.
struct LoadedEvent {
  std::string name;
  std::string ph;  // "B", "E", "i", or "C"
  int64_t pid = 0;
  int64_t tid = 0;
  double ts_us = 0.0;
  double value = 0.0;  // args.value
  bool has_value = false;
};

struct LoadedTrace {
  std::vector<LoadedEvent> events;  // file order (= per-track time order)
  std::map<int64_t, std::string> process_names;
  std::map<std::pair<int64_t, int64_t>, std::string> thread_names;
  int64_t emitted = 0;  // otherData bookkeeping (0 if absent)
  int64_t dropped = 0;
};

Result<LoadedTrace> ParseChromeTrace(const std::string& json);
Result<LoadedTrace> LoadChromeTrace(const std::string& path);

// Schema validation (the `dqr_trace --check` CI gate): every event names
// a known ph, carries pid/tid/ts, every track's timestamps are
// monotonically non-decreasing, B/E nest and balance per track, and
// every (pid, tid) track is named by metadata.
Status CheckChromeTrace(const LoadedTrace& trace);

// --- analysis -------------------------------------------------------

struct TrackSummary {
  std::string process;  // "q1/instance 0"
  std::string thread;   // "solver", "validator", ...
  double busy_us = 0.0;         // inside spans other than barrier_wait
  double barrier_us = 0.0;      // inside barrier_wait spans
  int64_t spans = 0;            // non-barrier span count
  std::map<std::string, int64_t> instants;  // name -> count
};

struct TraceSummary {
  double duration_us = 0.0;  // last ts - first ts over all events
  double first_result_us = 0.0;  // first result_* instant; < 0 if none
  int64_t events = 0;
  int64_t emitted = 0;
  int64_t dropped = 0;
  std::vector<TrackSummary> tracks;  // pid, then tid order
  // Phase-transition instants (us since trace start), < 0 if absent.
  double relax_start_us = -1.0;
  double constrain_start_us = -1.0;
  // Shard-handoff latency histogram: gap between a solver finishing one
  // shard_execute and its next shard_pickup. Buckets: <10us, <100us,
  // <1ms, <10ms, >=10ms.
  int64_t steal_latency[5] = {0, 0, 0, 0, 0};
};

TraceSummary Summarize(const LoadedTrace& trace);
// Human-readable rendering (what `dqr_trace FILE` prints).
std::string FormatSummary(const TraceSummary& summary);

}  // namespace dqr::obs

#endif  // DQR_OBS_TRACE_READER_H_
