#ifndef DQR_OBS_JSON_UTIL_H_
#define DQR_OBS_JSON_UTIL_H_

// Minimal recursive-descent JSON parser shared by the obs readers (the
// Chrome-trace reader, the profile codec, the bench regression gate).
// Just enough JSON for the documents this repo writes itself: objects,
// arrays, strings with simple escapes, numbers, true/false/null. Not a
// general-purpose parser — errors carry the byte offset and parsing is
// strict (no trailing content).

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dqr::obs::json {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  const Value* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

// Parses `text` as one JSON document.
Result<Value> Parse(const std::string& text);

// `fallback` when v is null or not a number.
double NumberOr(const Value* v, double fallback);

// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
void AppendQuoted(std::string& out, const std::string& s);

}  // namespace dqr::obs::json

#endif  // DQR_OBS_JSON_UTIL_H_
