#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "obs/histogram.h"
#include "obs/json_util.h"

namespace dqr::obs {

ProfileNode& ProfileNode::Child(const std::string& child_name) {
  for (ProfileNode& c : children) {
    if (c.name == child_name) return c;
  }
  children.emplace_back();
  children.back().name = child_name;
  return children.back();
}

const ProfileNode* ProfileNode::Find(const std::string& child_name) const {
  for (const ProfileNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

namespace {

std::string LeafName(const TraceRing& ring) {
  if (ring.instance() < 0) return ThreadRoleString(ring.role());
  return "i" + std::to_string(ring.instance()) + "/" +
         ThreadRoleString(ring.role());
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatShort(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatPercent(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

// "+8.9%" / "-12.0%"; "new" when the baseline is zero but the current
// value is not (a ratio against zero is meaningless, not infinite).
std::string PercentDelta(double a, double b) {
  if (a == 0.0 && b == 0.0) return "+0.0%";
  if (a == 0.0) return "new";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------
// Assembly from the flight recorder.

QueryProfile AssembleProfile(const Trace& trace, int epoch,
                             const core::RunStats& stats) {
  QueryProfile p;
  p.stats = stats;
  p.root.name = "query";
  p.root.count = 1;
  const int64_t wall_ns =
      stats.total_s > 0.0 ? static_cast<int64_t>(stats.total_s * 1e9) : 0;
  p.root.total_ns = wall_ns;
  p.root.max_ns = wall_ns;

  // This query's rings, in (instance, role) order so the leaf order of
  // every site node is deterministic.
  std::vector<const TraceRing*> rings;
  for (const TraceRing* r : trace.rings()) {
    if (r->epoch() == epoch) rings.push_back(r);
  }
  std::stable_sort(rings.begin(), rings.end(),
                   [](const TraceRing* a, const TraceRing* b) {
                     if (a->instance() != b->instance()) {
                       return a->instance() < b->instance();
                     }
                     return static_cast<int>(a->role()) <
                            static_cast<int>(b->role());
                   });

  std::vector<std::vector<TraceEvent>> snaps;
  snaps.reserve(rings.size());
  for (const TraceRing* r : rings) {
    snaps.push_back(r->Snapshot());
    p.trace_emitted += r->emitted();
    p.trace_dropped += r->dropped();
  }

  // Phase boundaries: every event before the first phase_* instant is
  // "collecting"; each flip opens a new phase at its timestamp. Flips
  // are cluster-wide facts, so the earliest sighting across all rings
  // wins.
  std::vector<std::pair<int64_t, const char*>> flips;
  for (const std::vector<TraceEvent>& snap : snaps) {
    for (const TraceEvent& e : snap) {
      if (e.kind != EventKind::kInstant) continue;
      if (e.name == EventName::kPhaseRelaxing) {
        flips.emplace_back(e.ts_ns, "relaxing");
      } else if (e.name == EventName::kPhaseConstraining) {
        flips.emplace_back(e.ts_ns, "constraining");
      }
    }
  }
  std::sort(flips.begin(), flips.end());
  // Keep only the first sighting of each phase name.
  {
    std::set<std::string> seen;
    std::vector<std::pair<int64_t, const char*>> unique;
    for (const auto& f : flips) {
      if (seen.insert(f.second).second) unique.push_back(f);
    }
    flips = std::move(unique);
  }

  auto phase_for = [&flips](int64_t ts) {
    const char* phase = "collecting";
    for (const auto& f : flips) {
      if (f.first <= ts) phase = f.second;
      else break;
    }
    return phase;
  };

  // Canonical phase order: collecting first, then flips by time.
  p.root.Child("collecting");
  for (const auto& f : flips) p.root.Child(f.second);

  for (size_t i = 0; i < rings.size(); ++i) {
    const std::string leaf = LeafName(*rings[i]);
    // Innermost-open-span matching, per event name (the engine never
    // nests same-name spans, but the ring can drop a Begin: an End with
    // no open span is discarded, as is a Begin never closed).
    std::map<EventName, std::vector<int64_t>> open;
    for (const TraceEvent& e : snaps[i]) {
      switch (e.kind) {
        case EventKind::kBegin:
          open[e.name].push_back(e.ts_ns);
          break;
        case EventKind::kEnd: {
          std::vector<int64_t>& stack = open[e.name];
          if (stack.empty()) break;
          const int64_t begin_ts = stack.back();
          stack.pop_back();
          const int64_t dur = e.ts_ns > begin_ts ? e.ts_ns - begin_ts : 0;
          ProfileNode& node = p.root.Child(phase_for(begin_ts))
                                  .Child(EventNameString(e.name))
                                  .Child(leaf);
          ++node.count;
          node.total_ns += dur;
          node.max_ns = std::max(node.max_ns, dur);
          break;
        }
        case EventKind::kInstant:
        case EventKind::kCounter: {
          ProfileNode& node = p.root.Child(phase_for(e.ts_ns))
                                  .Child(EventNameString(e.name))
                                  .Child(leaf);
          ++node.count;
          break;
        }
      }
    }
  }

  // Interior aggregation: sites sum their instance leaves, phases their
  // sites. Site order within a phase is alphabetical (first-encounter
  // order would depend on thread timing).
  for (ProfileNode& phase : p.root.children) {
    std::sort(phase.children.begin(), phase.children.end(),
              [](const ProfileNode& a, const ProfileNode& b) {
                return a.name < b.name;
              });
    phase.count = phase.total_ns = phase.max_ns = 0;
    for (ProfileNode& site : phase.children) {
      site.count = site.total_ns = site.max_ns = 0;
      for (const ProfileNode& inst : site.children) {
        site.count += inst.count;
        site.total_ns += inst.total_ns;
        site.max_ns = std::max(site.max_ns, inst.max_ns);
      }
      phase.count += site.count;
      phase.total_ns += site.total_ns;
      phase.max_ns = std::max(phase.max_ns, site.max_ns);
    }
  }
  return p;
}

// ---------------------------------------------------------------------
// JSON codec. One overload pair per RunStats field type; the X-macro
// walks the field table for both directions, so a new field needs no
// codec edits unless it introduces a new type.

namespace {

void AppendStat(std::string& out, double v) { out += FormatDouble(v); }
void AppendStat(std::string& out, int64_t v) { out += std::to_string(v); }
void AppendStat(std::string& out, bool v) { out += v ? "true" : "false"; }
void AppendStat(std::string& out, const cp::SearchStats& s) {
  out += "{\"nodes\":" + std::to_string(s.nodes) +
         ",\"fails\":" + std::to_string(s.fails) +
         ",\"leaves\":" + std::to_string(s.leaves) +
         ",\"monitor_prunes\":" + std::to_string(s.monitor_prunes) +
         ",\"completed\":" + (s.completed ? std::string("true") : "false") +
         "}";
}
void AppendStat(std::string& out, const LatencyHistogram& h) {
  json::AppendQuoted(out, EncodeHistogram(h));
}
void AppendStat(std::string& out, const EstimatorAccuracy& a) {
  // Fixed array of [samples, contained, wasted, width_sum, abs_err_sum].
  out += '[';
  for (int i = 0; i < EstimatorAccuracy::kMaxLevels; ++i) {
    const EstimatorAccuracy::Level& l = a.level(i);
    if (i > 0) out += ',';
    out += '[';
    out += std::to_string(l.samples) + ',' + std::to_string(l.contained) +
           ',' + std::to_string(l.wasted) + ',' + FormatDouble(l.width_sum) +
           ',' + FormatDouble(l.abs_err_sum);
    out += ']';
  }
  out += ']';
}

int64_t AsInt64(double v) {
  return static_cast<int64_t>(std::llround(v));
}

bool ParseStat(const json::Value* v, double* out) {
  if (v == nullptr || v->kind != json::Value::kNumber) return false;
  *out = v->number;
  return true;
}
bool ParseStat(const json::Value* v, int64_t* out) {
  if (v == nullptr || v->kind != json::Value::kNumber) return false;
  *out = AsInt64(v->number);
  return true;
}
bool ParseStat(const json::Value* v, bool* out) {
  if (v == nullptr || v->kind != json::Value::kBool) return false;
  *out = v->boolean;
  return true;
}
bool ParseStat(const json::Value* v, cp::SearchStats* out) {
  if (v == nullptr || v->kind != json::Value::kObject) return false;
  cp::SearchStats s;
  if (!ParseStat(v->Find("nodes"), &s.nodes)) return false;
  if (!ParseStat(v->Find("fails"), &s.fails)) return false;
  if (!ParseStat(v->Find("leaves"), &s.leaves)) return false;
  if (!ParseStat(v->Find("monitor_prunes"), &s.monitor_prunes)) return false;
  if (!ParseStat(v->Find("completed"), &s.completed)) return false;
  *out = s;
  return true;
}
bool ParseStat(const json::Value* v, LatencyHistogram* out) {
  if (v == nullptr || v->kind != json::Value::kString) return false;
  LatencyHistogram h;
  if (!DecodeHistogram(v->str, &h)) return false;
  *out = h;
  return true;
}
bool ParseStat(const json::Value* v, EstimatorAccuracy* out) {
  if (v == nullptr || v->kind != json::Value::kArray) return false;
  if (v->arr.size() != EstimatorAccuracy::kMaxLevels) return false;
  EstimatorAccuracy a;
  for (int i = 0; i < EstimatorAccuracy::kMaxLevels; ++i) {
    const json::Value& lv = v->arr[i];
    if (lv.kind != json::Value::kArray || lv.arr.size() != 5) return false;
    EstimatorAccuracy::Level l;
    for (const json::Value& field : lv.arr) {
      if (field.kind != json::Value::kNumber) return false;
    }
    l.samples = AsInt64(lv.arr[0].number);
    l.contained = AsInt64(lv.arr[1].number);
    l.wasted = AsInt64(lv.arr[2].number);
    l.width_sum = lv.arr[3].number;
    l.abs_err_sum = lv.arr[4].number;
    a.OverrideLevel(i, l);
  }
  *out = a;
  return true;
}

void AppendNodeJson(std::string& out, const ProfileNode& n) {
  out += "{\"name\":";
  json::AppendQuoted(out, n.name);
  out += ",\"count\":" + std::to_string(n.count) +
         ",\"total_ns\":" + std::to_string(n.total_ns) +
         ",\"max_ns\":" + std::to_string(n.max_ns);
  if (!n.children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out += ',';
      AppendNodeJson(out, n.children[i]);
    }
    out += ']';
  }
  out += '}';
}

Status ParseNode(const json::Value& v, ProfileNode* out) {
  if (v.kind != json::Value::kObject) {
    return InvalidArgumentError("profile node is not an object");
  }
  const json::Value* name = v.Find("name");
  if (name == nullptr || name->kind != json::Value::kString) {
    return InvalidArgumentError("profile node lacks a name");
  }
  out->name = name->str;
  out->count = AsInt64(json::NumberOr(v.Find("count"), 0));
  out->total_ns = AsInt64(json::NumberOr(v.Find("total_ns"), 0));
  out->max_ns = AsInt64(json::NumberOr(v.Find("max_ns"), 0));
  if (const json::Value* kids = v.Find("children")) {
    if (kids->kind != json::Value::kArray) {
      return InvalidArgumentError("profile node children is not an array");
    }
    out->children.resize(kids->arr.size());
    for (size_t i = 0; i < kids->arr.size(); ++i) {
      if (Status s = ParseNode(kids->arr[i], &out->children[i]); !s.ok()) {
        return s;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::string ProfileToJson(const QueryProfile& p) {
  std::string out;
  out.reserve(4096);
  out += "{\"version\":1,\"query\":";
  AppendNodeJson(out, p.root);
  out += ",\"stats\":{";
  bool first = true;
#define DQR_PROFILE_EMIT(type, name, init, agg, help) \
  if (!first) out += ',';                             \
  first = false;                                      \
  out += "\"" #name "\":";                            \
  AppendStat(out, p.stats.name);
  DQR_RUN_STATS_FIELDS(DQR_PROFILE_EMIT)
#undef DQR_PROFILE_EMIT
  out += "},\"trace\":{\"emitted\":" + std::to_string(p.trace_emitted) +
         ",\"dropped\":" + std::to_string(p.trace_dropped) + "}}";
  return out;
}

Result<QueryProfile> ProfileFromJson(const std::string& text) {
  Result<json::Value> root = json::Parse(text);
  if (!root.ok()) return root.status();
  const json::Value& doc = root.value();
  if (doc.kind != json::Value::kObject) {
    return InvalidArgumentError("profile root is not an object");
  }
  const double version = json::NumberOr(doc.Find("version"), 0);
  if (version != 1) {
    return InvalidArgumentError("unsupported profile version " +
                                std::to_string(static_cast<int>(version)));
  }
  const json::Value* query = doc.Find("query");
  if (query == nullptr) {
    return InvalidArgumentError("profile lacks a query tree");
  }
  QueryProfile p;
  if (Status s = ParseNode(*query, &p.root); !s.ok()) return s;
  const json::Value* stats = doc.Find("stats");
  if (stats == nullptr || stats->kind != json::Value::kObject) {
    return InvalidArgumentError("profile lacks a stats object");
  }
  // Missing fields keep their defaults (a profile written before a field
  // existed still loads); present-but-malformed fields are an error.
#define DQR_PROFILE_PARSE(type, name, init, agg, help)             \
  if (const json::Value* v = stats->Find(#name)) {                 \
    if (!ParseStat(v, &p.stats.name)) {                            \
      return InvalidArgumentError("malformed stats field " #name); \
    }                                                              \
  }
  DQR_RUN_STATS_FIELDS(DQR_PROFILE_PARSE)
#undef DQR_PROFILE_PARSE
  if (const json::Value* trace = doc.Find("trace")) {
    p.trace_emitted = AsInt64(json::NumberOr(trace->Find("emitted"), 0));
    p.trace_dropped = AsInt64(json::NumberOr(trace->Find("dropped"), 0));
  }
  return p;
}

// ---------------------------------------------------------------------
// Pretty report.

namespace {

void AppendTree(std::string& out, const ProfileNode& n, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += n.name;
  out += " count=" + std::to_string(n.count);
  if (n.total_ns > 0) {
    out += " busy=" + FormatNs(static_cast<double>(n.total_ns));
    out += " max=" + FormatNs(static_cast<double>(n.max_ns));
  }
  out += '\n';
  for (const ProfileNode& c : n.children) AppendTree(out, c, depth + 1);
}

// Section buffers the X-macro routes each stats field into by type.
struct StatsSections {
  std::string timings;
  std::string counters;
  std::string search;
  std::string latency;
  std::string accuracy;
};

void AddField(StatsSections& s, const char* name, double v) {
  if (v == 0.0) return;
  s.timings += "  " + std::string(name) + "=" + FormatShort(v) + "\n";
}
void AddField(StatsSections& s, const char* name, int64_t v) {
  if (v == 0) return;
  s.counters += "  " + std::string(name) + "=" + std::to_string(v) + "\n";
}
void AddField(StatsSections& s, const char* name, bool v) {
  // `completed` is the only bool; only its abnormal state is news.
  if (v) return;
  s.counters += "  " + std::string(name) + "=false\n";
}
void AddField(StatsSections& s, const char* name, const cp::SearchStats& v) {
  if (v.nodes == 0 && v.fails == 0 && v.leaves == 0) return;
  s.search += "  " + std::string(name) + " nodes=" + std::to_string(v.nodes) +
              " fails=" + std::to_string(v.fails) +
              " leaves=" + std::to_string(v.leaves) +
              " monitor_prunes=" + std::to_string(v.monitor_prunes) + "\n";
}
void AddField(StatsSections& s, const char* name, const LatencyHistogram& v) {
  if (v.empty()) return;
  s.latency += "  " + std::string(name) + " " + FormatLatencySummary(v) + "\n";
}
void AddField(StatsSections& s, const char* name, const EstimatorAccuracy& v) {
  if (v.empty()) return;
  for (int i = 0; i < EstimatorAccuracy::kMaxLevels; ++i) {
    const EstimatorAccuracy::Level& l = v.level(i);
    if (l.samples == 0) continue;
    const double n = static_cast<double>(l.samples);
    s.accuracy += "  level " + std::to_string(i) +
                  " samples=" + std::to_string(l.samples) + " contained=" +
                  FormatPercent(static_cast<double>(l.contained) / n) +
                  " wasted=" +
                  FormatPercent(static_cast<double>(l.wasted) / n) +
                  " mean_width=" + FormatShort(l.width_sum / n) +
                  " mean_abs_err=" + FormatShort(l.abs_err_sum / n) + "\n";
  }
  (void)name;
}

}  // namespace

std::string FormatProfile(const QueryProfile& p) {
  std::string out;
  out.reserve(4096);
  AppendTree(out, p.root, 0);
  out += "trace emitted=" + std::to_string(p.trace_emitted) +
         " dropped=" + std::to_string(p.trace_dropped) + "\n";

  StatsSections s;
#define DQR_PROFILE_FORMAT(type, name, init, agg, help) \
  AddField(s, #name, p.stats.name);
  DQR_RUN_STATS_FIELDS(DQR_PROFILE_FORMAT)
#undef DQR_PROFILE_FORMAT
  if (!s.latency.empty()) out += "latency\n" + s.latency;
  if (!s.accuracy.empty()) out += "estimator accuracy\n" + s.accuracy;
  if (!s.timings.empty()) out += "timings (s)\n" + s.timings;
  if (!s.search.empty()) out += "search\n" + s.search;
  if (!s.counters.empty()) out += "counters\n" + s.counters;
  return out;
}

// ---------------------------------------------------------------------
// Diff.

namespace {

void DiffTree(std::string& out, const std::string& path,
              const ProfileNode* a, const ProfileNode* b) {
  const int64_t at = a != nullptr ? a->total_ns : 0;
  const int64_t bt = b != nullptr ? b->total_ns : 0;
  const int64_t ac = a != nullptr ? a->count : 0;
  const int64_t bc = b != nullptr ? b->count : 0;
  if (at != 0 || bt != 0) {
    out += "  " + path + ": " + FormatNs(static_cast<double>(at)) + " -> " +
           FormatNs(static_cast<double>(bt)) + " (" +
           PercentDelta(static_cast<double>(at), static_cast<double>(bt)) +
           ")\n";
  } else if (ac != 0 || bc != 0) {
    out += "  " + path + ": " + std::to_string(ac) + " -> " +
           std::to_string(bc) + " (" +
           PercentDelta(static_cast<double>(ac), static_cast<double>(bc)) +
           ")\n";
  }
  // Union of child names, A's order first, then B-only children.
  std::vector<std::string> names;
  if (a != nullptr) {
    for (const ProfileNode& c : a->children) names.push_back(c.name);
  }
  if (b != nullptr) {
    for (const ProfileNode& c : b->children) {
      if (std::find(names.begin(), names.end(), c.name) == names.end()) {
        names.push_back(c.name);
      }
    }
  }
  for (const std::string& name : names) {
    const ProfileNode* ca = a != nullptr ? a->Find(name) : nullptr;
    const ProfileNode* cb = b != nullptr ? b->Find(name) : nullptr;
    DiffTree(out, path + "/" + name, ca, cb);
  }
}

struct DiffSections {
  std::string latency;
  std::string timings;
  std::string counters;
};

void DiffField(DiffSections& s, const char* name, double a, double b) {
  if (a == 0.0 && b == 0.0) return;
  s.timings += "  " + std::string(name) + ": " + FormatShort(a) + " -> " +
               FormatShort(b) + " (" + PercentDelta(a, b) + ")\n";
}
void DiffField(DiffSections& s, const char* name, int64_t a, int64_t b) {
  if (a == 0 && b == 0) return;
  s.counters += "  " + std::string(name) + ": " + std::to_string(a) +
                " -> " + std::to_string(b) + " (" +
                PercentDelta(static_cast<double>(a),
                             static_cast<double>(b)) +
                ")\n";
}
void DiffField(DiffSections& s, const char* name, bool a, bool b) {
  if (a == b) return;
  s.counters += "  " + std::string(name) + ": " +
                (a ? "true" : "false") + " -> " + (b ? "true" : "false") +
                "\n";
}
void DiffField(DiffSections& s, const char* name, const cp::SearchStats& a,
               const cp::SearchStats& b) {
  DiffField(s, (std::string(name) + "_nodes").c_str(), a.nodes, b.nodes);
  DiffField(s, (std::string(name) + "_fails").c_str(), a.fails, b.fails);
  DiffField(s, (std::string(name) + "_leaves").c_str(), a.leaves, b.leaves);
}
void DiffField(DiffSections& s, const char* name, const LatencyHistogram& a,
               const LatencyHistogram& b) {
  if (a.empty() && b.empty()) return;
  s.latency += "  " + std::string(name) + " p50: " +
               FormatNs(static_cast<double>(a.p50_ns())) + " -> " +
               FormatNs(static_cast<double>(b.p50_ns())) + " (" +
               PercentDelta(static_cast<double>(a.p50_ns()),
                            static_cast<double>(b.p50_ns())) +
               ")  p95: " + FormatNs(static_cast<double>(a.p95_ns())) +
               " -> " + FormatNs(static_cast<double>(b.p95_ns())) + " (" +
               PercentDelta(static_cast<double>(a.p95_ns()),
                            static_cast<double>(b.p95_ns())) +
               ")\n";
}
void DiffField(DiffSections& s, const char* name, const EstimatorAccuracy& a,
               const EstimatorAccuracy& b) {
  if (a.empty() && b.empty()) return;
  DiffField(s, (std::string(name) + "_samples").c_str(), a.total_samples(),
            b.total_samples());
}

}  // namespace

std::string DiffProfiles(const QueryProfile& a, const QueryProfile& b) {
  std::string out;
  out.reserve(4096);
  out += "tree busy (A -> B)\n";
  DiffTree(out, "query", &a.root, &b.root);

  DiffSections s;
#define DQR_PROFILE_DIFF(type, name, init, agg, help) \
  DiffField(s, #name, a.stats.name, b.stats.name);
  DQR_RUN_STATS_FIELDS(DQR_PROFILE_DIFF)
#undef DQR_PROFILE_DIFF
  if (!s.latency.empty()) out += "latency\n" + s.latency;
  if (!s.timings.empty()) out += "timings (s)\n" + s.timings;
  if (!s.counters.empty()) out += "counters\n" + s.counters;
  return out;
}

// ---------------------------------------------------------------------

Profile::Profile() : trace_(std::make_unique<Trace>()) {}
Profile::~Profile() = default;

}  // namespace dqr::obs
