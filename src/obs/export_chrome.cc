#include "obs/export_chrome.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace dqr::obs {
namespace {

// pid layout: one process per (epoch, instance). Instance -1 (the
// cluster-level detector) maps to slot 0 of its epoch. 4096 instances per
// epoch is far beyond anything the simulator runs.
constexpr int64_t kEpochStride = 4096;

int64_t PidFor(int epoch, int instance) {
  return static_cast<int64_t>(epoch) * kEpochStride + instance + 1;
}

std::string ProcessNameFor(int epoch, int instance) {
  char buf[64];
  if (instance < 0) {
    std::snprintf(buf, sizeof(buf), "q%d/cluster", epoch);
  } else {
    std::snprintf(buf, sizeof(buf), "q%d/instance %d", epoch, instance);
  }
  return buf;
}

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                              sizeof(buf) - 1));
}

// Doubles are emitted with enough digits to round-trip; JSON has no
// inf/nan, clamp those to 0 (they never occur in practice).
void AppendDouble(std::string& out, double v) {
  if (!(v == v) || v > 1e300 || v < -1e300) v = 0.0;
  AppendF(out, "%.17g", v);
}

void AppendMetadata(std::string& out, const char* what, int64_t pid,
                    int64_t tid, const std::string& name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  AppendF(out, "{\"ph\":\"M\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
               ",\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}",
          pid, tid, what, name.c_str());
}

}  // namespace

std::string ExportChromeJson(const Trace& trace) {
  const std::vector<const TraceRing*> rings = trace.rings();
  const int64_t origin = trace.origin_ns();

  std::string out;
  out.reserve(4096 + rings.size() * 4096);
  out += "{\"traceEvents\":[\n";
  bool first = true;

  // Metadata: process and thread names, deduplicated.
  std::map<int64_t, std::string> procs;
  std::map<std::pair<int64_t, int64_t>, std::string> threads;
  for (const TraceRing* ring : rings) {
    const int64_t pid = PidFor(ring->epoch(), ring->instance());
    const int64_t tid = static_cast<int64_t>(ring->role());
    procs.emplace(pid, ProcessNameFor(ring->epoch(), ring->instance()));
    threads.emplace(std::make_pair(pid, tid), ThreadRoleString(ring->role()));
  }
  for (const auto& [pid, name] : procs) {
    AppendMetadata(out, "process_name", pid, 0, name, first);
  }
  for (const auto& [key, name] : threads) {
    AppendMetadata(out, "thread_name", key.first, key.second, name, first);
  }

  for (const TraceRing* ring : rings) {
    const int64_t pid = PidFor(ring->epoch(), ring->instance());
    const int64_t tid = static_cast<int64_t>(ring->role());
    const std::vector<TraceEvent> events = ring->Snapshot();

    // Span integrity after drop-oldest truncation: an E whose B was
    // dropped must itself be dropped (depth would go negative), and a B
    // still open at the end is closed synthetically at the last
    // timestamp, so the JSON always balances.
    int depth = 0;
    std::vector<std::pair<EventName, double>> open;  // (name, begin ts_us)
    int64_t last_ts = 0;
    for (const TraceEvent& ev : events) {
      const double ts_us =
          static_cast<double>(ev.ts_ns - origin) / 1000.0;
      last_ts = std::max(last_ts, ev.ts_ns);
      const char* name = EventNameString(ev.name);
      switch (ev.kind) {
        case EventKind::kBegin:
          ++depth;
          open.emplace_back(ev.name, ts_us);
          if (!first) out += ",\n";
          first = false;
          AppendF(out, "{\"ph\":\"B\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                       ",\"name\":\"%s\",\"cat\":\"dqr\",\"ts\":",
                  pid, tid, name);
          AppendDouble(out, ts_us);
          out += "}";
          break;
        case EventKind::kEnd:
          if (depth == 0) break;  // begin lost to drop-oldest
          --depth;
          open.pop_back();
          if (!first) out += ",\n";
          first = false;
          AppendF(out, "{\"ph\":\"E\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                       ",\"name\":\"%s\",\"cat\":\"dqr\",\"ts\":",
                  pid, tid, name);
          AppendDouble(out, ts_us);
          out += "}";
          break;
        case EventKind::kInstant:
          if (!first) out += ",\n";
          first = false;
          AppendF(out, "{\"ph\":\"i\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                       ",\"name\":\"%s\",\"cat\":\"dqr\",\"s\":\"t\",\"ts\":",
                  pid, tid, name);
          AppendDouble(out, ts_us);
          out += ",\"args\":{\"value\":";
          AppendDouble(out, ev.value);
          out += "}}";
          break;
        case EventKind::kCounter:
          if (!first) out += ",\n";
          first = false;
          AppendF(out, "{\"ph\":\"C\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                       ",\"name\":\"%s\",\"cat\":\"dqr\",\"ts\":",
                  pid, tid, name);
          AppendDouble(out, ts_us);
          out += ",\"args\":{\"value\":";
          AppendDouble(out, ev.value);
          out += "}}";
          break;
      }
    }
    while (!open.empty()) {
      const auto [name, begin_us] = open.back();
      open.pop_back();
      const double ts_us = std::max(
          begin_us, static_cast<double>(last_ts - origin) / 1000.0);
      if (!first) out += ",\n";
      first = false;
      AppendF(out, "{\"ph\":\"E\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                   ",\"name\":\"%s\",\"cat\":\"dqr\",\"ts\":",
              pid, tid, EventNameString(name));
      AppendDouble(out, ts_us);
      out += "}";
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  AppendF(out, "\"emitted\":%" PRId64 ",\"dropped\":%" PRId64,
          trace.total_emitted(), trace.total_dropped());
  out += "}}";
  return out;
}

Status WriteChromeTrace(const Trace& trace, const std::string& path) {
  const std::string json = ExportChromeJson(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return InternalError("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace dqr::obs
