#ifndef DQR_OBS_METRICS_H_
#define DQR_OBS_METRICS_H_

// Prometheus-style text exposition of RunStats. Generated from the
// DQR_RUN_STATS_FIELDS X-macro in core/stats.h, so the snapshot always
// covers every field — a stat cannot be added without showing up here.

#include <string>

#include "core/stats.h"
#include "obs/histogram.h"

namespace dqr::obs {

// Renders `stats` in the Prometheus text exposition format (one
// HELP/TYPE/value triplet per field, `dqr_` prefix; SUM fields are
// counters, everything else a gauge; nested SearchStats expand as
// dqr_<field>_<sub>). `labels` is inserted verbatim into each sample's
// label set (e.g. "query=\"q1\"") and may be empty.
std::string MetricsSnapshot(const core::RunStats& stats,
                            const std::string& labels = "");

// Appends one sample with its HELP/TYPE preamble to `out` (the `dqr_`
// prefix is prepended to `name`; `type` is "counter" or "gauge";
// `labels` as in MetricsSnapshot). The building block MetricsSnapshot is
// generated from — exposed so other layers (the serve front end's
// tenant/connection metrics) register their own samples into the same
// exposition instead of inventing a second format.
void AppendMetricSample(std::string& out, const std::string& name,
                        const std::string& help, const std::string& type,
                        const std::string& labels, double value);

// Appends one histogram in the native Prometheus exposition (cumulative
// _bucket{le=...} samples for populated buckets plus +Inf, then _sum in
// seconds and _count), `dqr_` prefix prepended as in AppendMetricSample.
// The building block behind every HIST field in MetricsSnapshot; exposed
// so the serve layer can register per-tenant latency histograms into the
// same exposition.
void AppendLatencyHistogram(std::string& out, const std::string& name,
                            const std::string& help,
                            const std::string& labels,
                            const LatencyHistogram& h);

}  // namespace dqr::obs

#endif  // DQR_OBS_METRICS_H_
