#ifndef DQR_OBS_EXPORT_CHROME_H_
#define DQR_OBS_EXPORT_CHROME_H_

// Chrome trace_event JSON exporter: the output loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Mapping:
//   process = one engine instance of one query ("q<epoch>/instance <id>";
//             the cluster-level detector is "q<epoch>/cluster")
//   thread  = one engine thread role (solver, validator, ...)
//   B/E     = span events, i = instants, C = counters
// Timestamps are microseconds relative to Trace::origin_ns().

#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace dqr::obs {

// Serializes every ring of `trace` into one trace_event JSON document.
// Always valid JSON, even for an empty trace.
std::string ExportChromeJson(const Trace& trace);

// ExportChromeJson + write to `path` (overwrites).
Status WriteChromeTrace(const Trace& trace, const std::string& path);

}  // namespace dqr::obs

#endif  // DQR_OBS_EXPORT_CHROME_H_
