#ifndef DQR_OBS_TRACE_H_
#define DQR_OBS_TRACE_H_

// Flight-recorder tracing (DESIGN.md §8).
//
// Each engine thread records into its own fixed-capacity single-producer
// ring buffer: no locks, no heap allocation, and no inter-thread
// synchronization on the hot path. The ring drops the *oldest* events on
// overflow, so what survives a long run is the interesting tail (the
// moments before a crash, the end-game of a drain). Readers (exporters,
// tests) snapshot rings concurrently through a per-slot seqlock; a torn
// slot is simply skipped.
//
// The whole layer compiles down to a single well-predicted null check
// when `RefineOptions::trace == nullptr` — ThreadTracer is a tagged
// pointer wrapper, and every Emit call starts with `if (ring_ == nullptr)
// return;`. Tracing must never perturb query results: hooks only *read*
// engine state that the instrumented code already computed.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace dqr::obs {

// Event taxonomy: one X-macro so the enum, its wire name, and the
// exporters can never drift apart. Names are stable — the trace reader,
// golden tests, and CI schema check all key on them.
//
//   spans  (Begin/End pair on one thread): shard_execute, replay_execute,
//          validate, barrier_wait
//   instants: everything punctual (value column in parentheses)
//   counters: sampled monotone engine state (mrp, mrk)
#define DQR_TRACE_EVENTS(X)                                              \
  X(kShardExecute, "shard_execute")       /* span: one shard search */   \
  X(kReplayExecute, "replay_execute")     /* span: one fail replay */    \
  X(kValidate, "validate")                /* span: one candidate */      \
  X(kBarrierWait, "barrier_wait")         /* span: quiescence wait */    \
  X(kShardPickup, "shard_pickup")         /* instant (shard lo) */       \
  X(kFailRecord, "fail_record")           /* instant (brp) */            \
  X(kReplayPop, "replay_pop")             /* instant (brp) */            \
  X(kReplaySteal, "replay_steal")         /* instant (origin id) */      \
  X(kCandidateEnqueue, "candidate_enqueue") /* instant (priority) */     \
  X(kFalsePositive, "false_positive")     /* instant (rp) */             \
  X(kResultExact, "result_exact")         /* instant (rk) */             \
  X(kResultRelaxed, "result_relaxed")     /* instant (rp) */             \
  X(kPhaseRelaxing, "phase_relaxing")     /* instant: relax begins */    \
  X(kPhaseConstraining, "phase_constraining") /* instant: k-th exact */  \
  X(kHeartbeat, "heartbeat")              /* instant */                  \
  X(kInstanceDead, "instance_dead")       /* instant (dead id) */        \
  X(kLeaseReclaim, "lease_reclaim")       /* instant (fails) */          \
  X(kCrash, "crash")                      /* instant (fault site) */     \
  X(kMrp, "mrp")                          /* counter */                  \
  X(kMrk, "mrk")                          /* counter */                  \
  X(kCacheLookup, "cache_lookup")         /* span: semantic-cache probe */\
  X(kCacheExactHit, "cache_exact_hit")    /* instant (results) */        \
  X(kCacheSubsume, "cache_subsume")       /* instant (results) */        \
  X(kCacheWarmStart, "cache_warm_start")  /* instant (results) */        \
  X(kCacheMiss, "cache_miss")             /* instant (results) */        \
  X(kCacheStore, "cache_store")           /* instant (results) */

enum class EventName : uint8_t {
#define DQR_OBS_EVENT_ENUM(sym, str) sym,
  DQR_TRACE_EVENTS(DQR_OBS_EVENT_ENUM)
#undef DQR_OBS_EVENT_ENUM
};

const char* EventNameString(EventName name);

enum class EventKind : uint8_t {
  kBegin = 0,    // span opens on this thread
  kEnd = 1,      // span closes (innermost open span of `name`)
  kInstant = 2,  // punctual event; `value` is the payload
  kCounter = 3,  // sampled value of a monotone engine quantity
};

// Which engine thread owns a ring; becomes the Perfetto track name.
enum class ThreadRole : uint8_t {
  kSolver = 0,
  kValidator = 1,
  kSpeculative = 2,
  kHeartbeat = 3,
  kDetector = 4,  // cluster-level failure detector (instance -1)
  kSession = 5,   // semantic-cache session layer (instance -1)
};

const char* ThreadRoleString(ThreadRole role);

// One decoded trace record (the snapshot/export form, not the wire form).
struct TraceEvent {
  int64_t ts_ns = 0;  // steady-clock, relative to Trace::origin_ns()
  double value = 0.0;
  EventName name{};
  EventKind kind{};
};

// Fixed-capacity single-producer ring. Exactly one thread may call Emit;
// any thread may Snapshot concurrently. Overflow overwrites the oldest
// slot (power-of-two mask), so the ring always holds the newest
// `capacity()` events and `dropped()` reports how many were lost.
//
// Concurrency discipline (the per-slot seqlock):
//   writer: slot.seq = 0 (release)     -- invalidate
//           payload stores (relaxed)
//           slot.seq = index+1 (release)
//           head_ = index+1 (release)
//   reader: h = head_ (acquire); for each slot: s0 = seq (acquire),
//           payload loads, s1 = seq (acquire); keep iff s0 == s1 ==
//           expected index+1. A concurrent overwrite changes seq, so a
//           torn read is detected and the slot skipped — never blocked.
class TraceRing {
 public:
  TraceRing(int instance, ThreadRole role, int epoch, int64_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Producer side (single thread).
  void Emit(EventKind kind, EventName name, double value) {
    EmitAt(Now(), kind, name, value);
  }
  // Deterministic-timestamp variant for golden tests.
  void EmitAt(int64_t ts_ns, EventKind kind, EventName name, double value);

  // Consumer side (any thread, any time). Returns the surviving events in
  // emission order; slots mid-overwrite are skipped.
  std::vector<TraceEvent> Snapshot() const;

  int instance() const { return instance_; }
  ThreadRole role() const { return role_; }
  int epoch() const { return epoch_; }
  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }
  // Total events ever emitted / lost to overwrite. `dropped()` is derived,
  // so it is exact once the producer thread has quiesced.
  int64_t emitted() const { return head_.load(std::memory_order_acquire); }
  int64_t dropped() const {
    const int64_t e = emitted();
    return e > capacity() ? e - capacity() : 0;
  }

  static int64_t Now();

 private:
  struct Slot {
    std::atomic<int64_t> seq{0};  // index+1 when valid, 0 while written
    std::atomic<int64_t> ts_ns{0};
    std::atomic<uint64_t> value_bits{0};
    std::atomic<uint32_t> meta{0};  // name | kind << 8
  };

  const int instance_;
  const ThreadRole role_;
  const int epoch_;
  std::atomic<int64_t> head_{0};  // next emission index
  std::vector<Slot> slots_;       // size is a power of two
  const int64_t mask_;
};

// Owner of all rings recorded during one or more queries. Thread-safe;
// rings are created once per engine thread per query and stay valid until
// the Trace is destroyed (deque => stable addresses).
class Trace {
 public:
  Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Marks the start of a query and returns its epoch; rings created
  // afterwards without an explicit epoch carry it. Exporters map each
  // (epoch, instance) pair to its own process, so successive queries
  // traced into one file do not overlay.
  int BeginQuery();

  TraceRing* CreateRing(int instance, ThreadRole role, int64_t capacity);
  // Epoch-explicit variant for concurrent queries sharing one Trace: the
  // implicit "current epoch" is a single cursor, so slots that overlap in
  // time must pin their BeginQuery() epoch explicitly or their rings
  // could land in another slot's process group.
  TraceRing* CreateRing(int instance, ThreadRole role, int64_t capacity,
                        int epoch);

  std::vector<const TraceRing*> rings() const;
  // steady-clock ns at construction; exporters subtract it so timestamps
  // start near zero.
  int64_t origin_ns() const { return origin_ns_; }
  int epoch() const;

  int64_t total_emitted() const;
  int64_t total_dropped() const;

 private:
  const int64_t origin_ns_;
  mutable std::mutex mu_;
  int epoch_ = 0;
  std::deque<std::unique_ptr<TraceRing>> rings_;
};

// Span guard: emits kBegin on construction, kEnd on destruction. Obtain
// via ThreadTracer::Scope; a null tracer makes both ends no-ops.
class SpanScope {
 public:
  SpanScope(TraceRing* ring, EventName name) : ring_(ring), name_(name) {
    if (ring_ != nullptr) ring_->Emit(EventKind::kBegin, name_, 0.0);
  }
  ~SpanScope() {
    if (ring_ != nullptr) ring_->Emit(EventKind::kEnd, name_, 0.0);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceRing* ring_;
  EventName name_;
};

// The per-thread handle the engine code holds. Copyable value type; when
// tracing is off it wraps nullptr and every call is one branch.
class ThreadTracer {
 public:
  ThreadTracer() = default;
  explicit ThreadTracer(TraceRing* ring) : ring_(ring) {}

  void Instant(EventName name, double value = 0.0) {
    if (ring_ != nullptr) ring_->Emit(EventKind::kInstant, name, value);
  }
  void Counter(EventName name, double value) {
    if (ring_ != nullptr) ring_->Emit(EventKind::kCounter, name, value);
  }
  SpanScope Scope(EventName name) { return SpanScope(ring_, name); }

  bool enabled() const { return ring_ != nullptr; }
  TraceRing* ring() const { return ring_; }

 private:
  TraceRing* ring_ = nullptr;
};

// Creates the thread's tracer, or a no-op tracer when `trace` is null.
// `epoch` >= 0 pins the ring to that query epoch (required when
// concurrent queries share the Trace); -1 uses the current epoch.
inline ThreadTracer MakeTracer(Trace* trace, int instance, ThreadRole role,
                               int64_t capacity, int epoch = -1) {
  if (trace == nullptr) return ThreadTracer();
  if (epoch >= 0) {
    return ThreadTracer(trace->CreateRing(instance, role, capacity, epoch));
  }
  return ThreadTracer(trace->CreateRing(instance, role, capacity));
}

}  // namespace dqr::obs

#endif  // DQR_OBS_TRACE_H_
