#include "obs/trace_reader.h"

#include "obs/json_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace dqr::obs {
namespace {

// JSON parsing is shared with the profile codec and the bench gate
// (obs/json_util.h); the trace-event names below are all this file adds.
using JsonValue = json::Value;
using json::NumberOr;

}  // namespace

Result<LoadedTrace> ParseChromeTrace(const std::string& json) {
  Result<JsonValue> root = dqr::obs::json::Parse(json);
  if (!root.ok()) return root.status();
  const JsonValue& doc = root.value();
  if (doc.kind != JsonValue::kObject) {
    return InvalidArgumentError("trace root is not an object");
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    return InvalidArgumentError("missing traceEvents array");
  }

  LoadedTrace out;
  for (const JsonValue& ev : events->arr) {
    if (ev.kind != JsonValue::kObject) {
      return InvalidArgumentError("trace event is not an object");
    }
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* name = ev.Find("name");
    if (ph == nullptr || ph->kind != JsonValue::kString ||
        name == nullptr || name->kind != JsonValue::kString) {
      return InvalidArgumentError("trace event lacks ph/name");
    }
    const int64_t pid =
        static_cast<int64_t>(NumberOr(ev.Find("pid"), -1));
    const int64_t tid =
        static_cast<int64_t>(NumberOr(ev.Find("tid"), -1));
    if (ph->str == "M") {
      const JsonValue* args = ev.Find("args");
      const JsonValue* value =
          args != nullptr ? args->Find("name") : nullptr;
      if (value == nullptr || value->kind != JsonValue::kString) {
        return InvalidArgumentError("metadata event lacks args.name");
      }
      if (name->str == "process_name") {
        out.process_names[pid] = value->str;
      } else if (name->str == "thread_name") {
        out.thread_names[{pid, tid}] = value->str;
      }
      continue;
    }
    LoadedEvent e;
    e.name = name->str;
    e.ph = ph->str;
    e.pid = pid;
    e.tid = tid;
    e.ts_us = NumberOr(ev.Find("ts"), 0.0);
    const JsonValue* args = ev.Find("args");
    if (const JsonValue* v = args ? args->Find("value") : nullptr;
        v != nullptr && v->kind == JsonValue::kNumber) {
      e.value = v->number;
      e.has_value = true;
    }
    out.events.push_back(std::move(e));
  }

  if (const JsonValue* other = doc.Find("otherData")) {
    out.emitted = static_cast<int64_t>(NumberOr(other->Find("emitted"), 0));
    out.dropped = static_cast<int64_t>(NumberOr(other->Find("dropped"), 0));
  }
  return out;
}

Result<LoadedTrace> LoadChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open trace file: " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ParseChromeTrace(text);
}

Status CheckChromeTrace(const LoadedTrace& trace) {
  static const std::set<std::string> kKnownPh = {"B", "E", "i", "C"};
  std::map<std::pair<int64_t, int64_t>, double> last_ts;
  std::map<std::pair<int64_t, int64_t>, std::vector<std::string>> open;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const LoadedEvent& e = trace.events[i];
    const std::string where = "event " + std::to_string(i) + " (" +
                              e.name + ")";
    if (kKnownPh.count(e.ph) == 0) {
      return InvalidArgumentError(where + ": unknown ph '" + e.ph + "'");
    }
    if (e.pid < 0 || e.tid < 0) {
      return InvalidArgumentError(where + ": missing pid/tid");
    }
    if (e.name.empty()) {
      return InvalidArgumentError(where + ": empty name");
    }
    if (trace.process_names.count(e.pid) == 0) {
      return InvalidArgumentError(where + ": unnamed process " +
                                  std::to_string(e.pid));
    }
    if (trace.thread_names.count({e.pid, e.tid}) == 0) {
      return InvalidArgumentError(where + ": unnamed thread " +
                                  std::to_string(e.tid));
    }
    const auto track = std::make_pair(e.pid, e.tid);
    if (auto it = last_ts.find(track);
        it != last_ts.end() && e.ts_us < it->second) {
      return InvalidArgumentError(where + ": timestamp regression");
    }
    last_ts[track] = e.ts_us;
    if (e.ph == "B") {
      open[track].push_back(e.name);
    } else if (e.ph == "E") {
      auto& stack = open[track];
      if (stack.empty()) {
        return InvalidArgumentError(where + ": E without B");
      }
      if (stack.back() != e.name) {
        return InvalidArgumentError(where + ": E does not match open B '" +
                                    stack.back() + "'");
      }
      stack.pop_back();
    } else if ((e.ph == "i" || e.ph == "C") && !e.has_value) {
      return InvalidArgumentError(where + ": missing args.value");
    }
  }
  for (const auto& [track, stack] : open) {
    if (!stack.empty()) {
      return InvalidArgumentError("unclosed span '" + stack.back() +
                                  "' on pid " + std::to_string(track.first));
    }
  }
  return Status::Ok();
}

TraceSummary Summarize(const LoadedTrace& trace) {
  TraceSummary out;
  out.events = static_cast<int64_t>(trace.events.size());
  out.emitted = trace.emitted;
  out.dropped = trace.dropped;
  out.first_result_us = -1.0;
  if (trace.events.empty()) return out;

  double min_ts = trace.events.front().ts_us;
  double max_ts = min_ts;
  for (const LoadedEvent& e : trace.events) {
    min_ts = std::min(min_ts, e.ts_us);
    max_ts = std::max(max_ts, e.ts_us);
  }
  out.duration_us = max_ts - min_ts;

  struct TrackState {
    TrackSummary summary;
    std::vector<std::pair<std::string, double>> open;  // (name, begin)
    double last_span_end = -1.0;  // end ts of previous shard_execute
  };
  std::map<std::pair<int64_t, int64_t>, TrackState> tracks;

  for (const LoadedEvent& e : trace.events) {
    const auto key = std::make_pair(e.pid, e.tid);
    TrackState& state = tracks[key];
    if (state.summary.process.empty()) {
      auto pit = trace.process_names.find(e.pid);
      auto tit = trace.thread_names.find(key);
      state.summary.process =
          pit != trace.process_names.end() ? pit->second : "?";
      state.summary.thread =
          tit != trace.thread_names.end() ? tit->second : "?";
    }
    const double rel = e.ts_us - min_ts;
    if (e.ph == "B") {
      state.open.emplace_back(e.name, e.ts_us);
    } else if (e.ph == "E") {
      if (state.open.empty()) continue;
      const auto [name, begin] = state.open.back();
      state.open.pop_back();
      // Only top-level spans count toward busy time (nested spans would
      // double-bill); the engine currently nests nothing.
      if (!state.open.empty()) continue;
      const double span_us = e.ts_us - begin;
      if (name == "barrier_wait") {
        state.summary.barrier_us += span_us;
      } else {
        state.summary.busy_us += span_us;
        ++state.summary.spans;
        if (name == "shard_execute") state.last_span_end = e.ts_us;
      }
    } else if (e.ph == "i") {
      ++state.summary.instants[e.name];
      if (e.name == "result_exact" || e.name == "result_relaxed") {
        if (out.first_result_us < 0.0 || rel < out.first_result_us) {
          out.first_result_us = rel;
        }
      } else if (e.name == "phase_relaxing") {
        if (out.relax_start_us < 0.0) out.relax_start_us = rel;
      } else if (e.name == "phase_constraining") {
        if (out.constrain_start_us < 0.0) out.constrain_start_us = rel;
      } else if (e.name == "shard_pickup" && state.last_span_end >= 0.0) {
        const double gap = e.ts_us - state.last_span_end;
        const int bucket = gap < 10.0 ? 0
                           : gap < 100.0 ? 1
                           : gap < 1000.0 ? 2
                           : gap < 10000.0 ? 3
                                           : 4;
        ++out.steal_latency[bucket];
        state.last_span_end = -1.0;
      }
    }
  }

  for (auto& [key, state] : tracks) {
    out.tracks.push_back(std::move(state.summary));
  }
  return out;
}

std::string FormatSummary(const TraceSummary& s) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "events: %lld (emitted %lld, dropped %lld), duration %.3f ms\n",
                static_cast<long long>(s.events),
                static_cast<long long>(s.emitted),
                static_cast<long long>(s.dropped), s.duration_us / 1000.0);
  out += buf;
  if (s.first_result_us >= 0.0) {
    std::snprintf(buf, sizeof(buf), "time-to-first-result: %.3f ms\n",
                  s.first_result_us / 1000.0);
    out += buf;
  } else {
    out += "time-to-first-result: (no results)\n";
  }
  if (s.relax_start_us >= 0.0) {
    std::snprintf(buf, sizeof(buf), "phase: relaxing from %.3f ms\n",
                  s.relax_start_us / 1000.0);
    out += buf;
  }
  if (s.constrain_start_us >= 0.0) {
    std::snprintf(buf, sizeof(buf), "phase: constraining from %.3f ms\n",
                  s.constrain_start_us / 1000.0);
    out += buf;
  }
  out += "tracks:\n";
  for (const TrackSummary& t : s.tracks) {
    const double denom = s.duration_us > 0.0 ? s.duration_us : 1.0;
    std::snprintf(buf, sizeof(buf),
                  "  %s/%s: busy %.1f%% (%lld spans), barrier %.1f%%",
                  t.process.c_str(), t.thread.c_str(),
                  100.0 * t.busy_us / denom,
                  static_cast<long long>(t.spans),
                  100.0 * t.barrier_us / denom);
    out += buf;
    int64_t instants = 0;
    for (const auto& [name, count] : t.instants) instants += count;
    if (instants > 0) {
      std::snprintf(buf, sizeof(buf), ", %lld instants",
                    static_cast<long long>(instants));
      out += buf;
    }
    out += "\n";
  }
  const int64_t total_gaps = s.steal_latency[0] + s.steal_latency[1] +
                             s.steal_latency[2] + s.steal_latency[3] +
                             s.steal_latency[4];
  if (total_gaps > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "shard handoff latency: <10us:%lld <100us:%lld <1ms:%lld "
        "<10ms:%lld >=10ms:%lld\n",
        static_cast<long long>(s.steal_latency[0]),
        static_cast<long long>(s.steal_latency[1]),
        static_cast<long long>(s.steal_latency[2]),
        static_cast<long long>(s.steal_latency[3]),
        static_cast<long long>(s.steal_latency[4]));
    out += buf;
  }
  return out;
}

}  // namespace dqr::obs
