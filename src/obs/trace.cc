#include "obs/trace.h"

#include <algorithm>
#include <cstring>

namespace dqr::obs {
namespace {

// Smallest power of two >= n (n >= 1).
int64_t RoundUpPow2(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* EventNameString(EventName name) {
  switch (name) {
#define DQR_OBS_EVENT_CASE(sym, str) \
  case EventName::sym:               \
    return str;
    DQR_TRACE_EVENTS(DQR_OBS_EVENT_CASE)
#undef DQR_OBS_EVENT_CASE
  }
  return "unknown";
}

const char* ThreadRoleString(ThreadRole role) {
  switch (role) {
    case ThreadRole::kSolver:
      return "solver";
    case ThreadRole::kValidator:
      return "validator";
    case ThreadRole::kSpeculative:
      return "speculative";
    case ThreadRole::kHeartbeat:
      return "heartbeat";
    case ThreadRole::kDetector:
      return "detector";
    case ThreadRole::kSession:
      return "session";
  }
  return "unknown";
}

TraceRing::TraceRing(int instance, ThreadRole role, int epoch,
                     int64_t capacity)
    : instance_(instance),
      role_(role),
      epoch_(epoch),
      slots_(static_cast<size_t>(RoundUpPow2(std::max<int64_t>(capacity, 2)))),
      mask_(static_cast<int64_t>(slots_.size()) - 1) {
  DQR_CHECK(capacity > 0);
}

int64_t TraceRing::Now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRing::EmitAt(int64_t ts_ns, EventKind kind, EventName name,
                       double value) {
  const int64_t i = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<size_t>(i & mask_)];
  // Invalidate, write payload, revalidate with the new index. Readers that
  // catch the slot mid-write see seq == 0 or mismatched before/after
  // values and skip it.
  slot.seq.store(0, std::memory_order_release);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.value_bits.store(bits, std::memory_order_relaxed);
  slot.meta.store(static_cast<uint32_t>(name) |
                      (static_cast<uint32_t>(kind) << 8),
                  std::memory_order_relaxed);
  slot.seq.store(i + 1, std::memory_order_release);
  head_.store(i + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const int64_t head = head_.load(std::memory_order_acquire);
  const int64_t cap = capacity();
  const int64_t lo = head > cap ? head - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(head - lo));
  for (int64_t i = lo; i < head; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(i & mask_)];
    const int64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != i + 1) continue;  // overwritten or mid-write
    TraceEvent ev;
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const uint64_t bits = slot.value_bits.load(std::memory_order_relaxed);
    const uint32_t meta = slot.meta.load(std::memory_order_relaxed);
    const int64_t seq_after = slot.seq.load(std::memory_order_acquire);
    if (seq_after != i + 1) continue;  // torn by a concurrent overwrite
    std::memcpy(&ev.value, &bits, sizeof(ev.value));
    ev.name = static_cast<EventName>(meta & 0xff);
    ev.kind = static_cast<EventKind>((meta >> 8) & 0xff);
    out.push_back(ev);
  }
  return out;
}

Trace::Trace() : origin_ns_(TraceRing::Now()) {}

int Trace::BeginQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++epoch_;
}

TraceRing* Trace::CreateRing(int instance, ThreadRole role,
                             int64_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(
      std::make_unique<TraceRing>(instance, role, epoch_, capacity));
  return rings_.back().get();
}

TraceRing* Trace::CreateRing(int instance, ThreadRole role,
                             int64_t capacity, int epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(
      std::make_unique<TraceRing>(instance, role, epoch, capacity));
  return rings_.back().get();
}

std::vector<const TraceRing*> Trace::rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const TraceRing*> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) out.push_back(ring.get());
  return out;
}

int Trace::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int64_t Trace::total_emitted() const {
  int64_t total = 0;
  for (const TraceRing* ring : rings()) total += ring->emitted();
  return total;
}

int64_t Trace::total_dropped() const {
  int64_t total = 0;
  for (const TraceRing* ring : rings()) total += ring->dropped();
  return total;
}

}  // namespace dqr::obs
