#include "obs/histogram.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace dqr::obs {
namespace {

thread_local LatencyHistogram* tls_latency_sink = nullptr;

// Strict non-negative int64 parse of [begin, end); false on any junk.
bool ParseInt64(const char* begin, const char* end, int64_t* out) {
  if (begin == end) return false;
  int64_t value = 0;
  for (const char* p = begin; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    const int digit = *p - '0';
    if (value > (std::numeric_limits<int64_t>::max() - digit) / 10) {
      value = std::numeric_limits<int64_t>::max();
    } else {
      value = value * 10 + digit;
    }
  }
  *out = value;
  return true;
}

}  // namespace

std::string FormatNs(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

std::string FormatLatencySummary(const LatencyHistogram& h) {
  if (h.empty()) return "empty";
  std::string out = "count=" + std::to_string(h.count());
  out += " mean=" + FormatNs(h.mean_ns());
  out += " p50=" + FormatNs(static_cast<double>(h.p50_ns()));
  out += " p95=" + FormatNs(static_cast<double>(h.p95_ns()));
  out += " p99=" + FormatNs(static_cast<double>(h.p99_ns()));
  out += " max=" + FormatNs(static_cast<double>(h.max_ns()));
  return out;
}

std::string EncodeHistogram(const LatencyHistogram& h) {
  std::string out = std::to_string(h.count());
  out += ';';
  out += std::to_string(h.sum_ns());
  out += ';';
  out += std::to_string(h.max_ns());
  out += ';';
  bool first = true;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t c = h.bucket_count(i);
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    out += std::to_string(i);
    out += ':';
    out += std::to_string(c);
  }
  return out;
}

bool DecodeHistogram(const std::string& text, LatencyHistogram* out) {
  *out = LatencyHistogram();
  const char* p = text.c_str();
  const char* end = p + text.size();
  int64_t header[3];
  for (int i = 0; i < 3; ++i) {
    const char* semi = p;
    while (semi != end && *semi != ';') ++semi;
    if (semi == end) return false;
    if (!ParseInt64(p, semi, &header[i])) return false;
    p = semi + 1;
  }
  // Rebuild buckets by replaying RecordMany at each bucket's lower
  // bound, then overwrite the exact header (sum/max are finer-grained
  // than bucket bounds can reproduce).
  LatencyHistogram h;
  while (p != end) {
    const char* comma = p;
    while (comma != end && *comma != ',') ++comma;
    const char* colon = p;
    while (colon != comma && *colon != ':') ++colon;
    if (colon == comma) return false;
    int64_t index = 0;
    int64_t count = 0;
    if (!ParseInt64(p, colon, &index)) return false;
    if (!ParseInt64(colon + 1, comma, &count)) return false;
    if (index < 0 || index >= LatencyHistogram::kNumBuckets || count <= 0) {
      return false;
    }
    h.RecordMany(LatencyHistogram::BucketLowerBound(
                     static_cast<int>(index)),
                 count);
    p = comma == end ? end : comma + 1;
  }
  if (h.count() != header[0]) return false;
  h.OverrideTotals(header[1], header[2]);
  *out = h;
  return true;
}

LatencyHistogram* ThreadLatencySink() { return tls_latency_sink; }

ScopedLatencySink::ScopedLatencySink(LatencyHistogram* sink)
    : previous_(tls_latency_sink) {
  tls_latency_sink = sink;
}

ScopedLatencySink::~ScopedLatencySink() { tls_latency_sink = previous_; }

namespace {
int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// Per-thread sampling phase; advances only while a sink is installed,
// so the profile-off path stays a single TLS load.
thread_local uint64_t tls_sink_ticks = 0;

ScopedSinkTimer::ScopedSinkTimer() : sink_(tls_latency_sink), start_ns_(0) {
  if (sink_ != nullptr) {
    if ((tls_sink_ticks++ & (kSamplePeriod - 1)) == 0) {
      start_ns_ = MonotonicNowNs();
    } else {
      sink_ = nullptr;  // unsampled: destructor becomes a no-op
    }
  }
}

ScopedSinkTimer::~ScopedSinkTimer() {
  if (sink_ != nullptr) sink_->Record(MonotonicNowNs() - start_ns_);
}

}  // namespace dqr::obs
