#include "synopsis/grid_synopsis.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace dqr::synopsis {
namespace {

// floor(log2(v)) for v >= 1 without shift/UB hazards.
inline int64_t Log2Floor(int64_t v) {
  DQR_CHECK(v >= 1);
  return static_cast<int64_t>(std::bit_width(static_cast<uint64_t>(v))) - 1;
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

double GridSynopsis::Level::BlockSum(int64_t i0, int64_t i1, int64_t j0,
                                     int64_t j1) const {
  if (i0 >= i1 || j0 >= j1) return 0.0;
  const int64_t stride = cell_cols + 1;
  const auto at = [&](int64_t i, int64_t j) {
    return prefix_sum[static_cast<size_t>(i * stride + j)];
  };
  return at(i1, j1) - at(i0, j1) - at(i1, j0) + at(i0, j0);
}

void GridSynopsis::BuildLevelFromGrid(Level* level,
                                      const array::Grid& grid) {
  const int64_t cs = level->cell_size;
  level->cell_rows = CeilDiv(grid.rows(), cs);
  level->cell_cols = CeilDiv(grid.cols(), cs);
  const size_t n =
      static_cast<size_t>(level->cell_rows * level->cell_cols);
  level->min.reserve(n);
  level->max.reserve(n);
  level->sum.reserve(n);
  for (int64_t i = 0; i < level->cell_rows; ++i) {
    for (int64_t j = 0; j < level->cell_cols; ++j) {
      const int64_t r0 = i * cs;
      const int64_t r1 = std::min(grid.rows(), r0 + cs);
      const int64_t c0 = j * cs;
      const int64_t c1 = std::min(grid.cols(), c0 + cs);
      const array::WindowAggregates agg = grid.AggregateRect(r0, r1, c0, c1);
      level->min.push_back(agg.min);
      level->max.push_back(agg.max);
      level->sum.push_back(agg.sum);
    }
  }
}

void GridSynopsis::BuildLevelFromFiner(Level* level, const Level& finer,
                                       int64_t rows, int64_t cols) {
  const int64_t cs = level->cell_size;
  DQR_CHECK(cs % finer.cell_size == 0);
  const int64_t ratio = cs / finer.cell_size;
  level->cell_rows = CeilDiv(rows, cs);
  level->cell_cols = CeilDiv(cols, cs);
  const size_t n =
      static_cast<size_t>(level->cell_rows * level->cell_cols);
  level->min.reserve(n);
  level->max.reserve(n);
  level->sum.reserve(n);
  // Because cs is a multiple of the finer cell size, the finer cells
  // [i * ratio, (i + 1) * ratio) x [j * ratio, (j + 1) * ratio) tile this
  // cell exactly (the grid edge just shortens the last finer row/column),
  // so min/max aggregate exactly and sums differ from a base scan only by
  // FP association.
  const int64_t fcc = finer.cell_cols;
  for (int64_t i = 0; i < level->cell_rows; ++i) {
    const int64_t fi0 = i * ratio;
    const int64_t fi1 = std::min(finer.cell_rows, fi0 + ratio);
    for (int64_t j = 0; j < level->cell_cols; ++j) {
      const int64_t fj0 = j * ratio;
      const int64_t fj1 = std::min(finer.cell_cols, fj0 + ratio);
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      double sm = 0.0;
      for (int64_t fi = fi0; fi < fi1; ++fi) {
        const size_t base = static_cast<size_t>(fi * fcc);
        double row_mn;
        double row_mx;
        simd::MinMaxReduce(finer.min.data() + base + fj0,
                           finer.max.data() + base + fj0, fj1 - fj0,
                           &row_mn, &row_mx);
        mn = std::min(mn, row_mn);
        mx = std::max(mx, row_mx);
        for (int64_t fj = fj0; fj < fj1; ++fj) {
          sm += finer.sum[base + static_cast<size_t>(fj)];
        }
      }
      level->min.push_back(mn);
      level->max.push_back(mx);
      level->sum.push_back(sm);
    }
  }
}

void GridSynopsis::FinalizeLevel(Level* level, bool is_coarsest) const {
  const int64_t cr = level->cell_rows;
  const int64_t cc = level->cell_cols;

  const uint64_t cs_u = static_cast<uint64_t>(level->cell_size);
  level->cell_shift =
      std::has_single_bit(cs_u) ? Log2Floor(level->cell_size) : -1;

  // 2-D prefix sums of cell sums, accumulated exactly like the original
  // row-major walk (per-row running sum added to the row above).
  const int64_t stride = cc + 1;
  level->prefix_sum.assign(static_cast<size_t>((cr + 1) * stride), 0.0);
  for (int64_t i = 0; i < cr; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < cc; ++j) {
      row_sum += level->sum[static_cast<size_t>(i * cc + j)];
      level->prefix_sum[static_cast<size_t>((i + 1) * stride + j + 1)] =
          level->prefix_sum[static_cast<size_t>(i * stride + j + 1)] +
          row_sum;
    }
  }

  // Sparse-table extents. Non-coarsest levels are picked only when the
  // query's overlapped-cell estimate fits the budget, which bounds the
  // per-dimension cell span by max_cells_per_query_; the coarsest level
  // absorbs everything else and gets the full table.
  level->block_rows = CeilDiv(cr, kRmqBlock);
  level->block_cols = CeilDiv(cc, kRmqBlock);
  const int64_t cap_r = is_coarsest ? cr : std::min(cr, max_cells_per_query_);
  const int64_t cap_c = is_coarsest ? cc : std::min(cc, max_cells_per_query_);
  const int64_t max_blocks_r =
      std::clamp<int64_t>(cap_r / kRmqBlock, 1, level->block_rows);
  const int64_t max_blocks_c =
      std::clamp<int64_t>(cap_c / kRmqBlock, 1, level->block_cols);
  level->rmq_rows_r = Log2Floor(max_blocks_r) + 1;
  level->rmq_rows_c = Log2Floor(max_blocks_c) + 1;

  const int64_t br = level->block_rows;
  const int64_t bc = level->block_cols;
  level->rmq.assign(static_cast<size_t>(level->rmq_rows_r *
                                        level->rmq_rows_c * br * bc * 2),
                    0.0);
  const auto entry = [&](int64_t kr, int64_t kc, int64_t i,
                         int64_t j) -> double* {
    return level->rmq.data() +
           (((kr * level->rmq_rows_c + kc) * br + i) * bc + j) * 2;
  };

  // (0, 0): block aggregates straight from the cell planes.
  for (int64_t bi = 0; bi < br; ++bi) {
    const int64_t i0 = bi * kRmqBlock;
    const int64_t i1 = std::min(cr, i0 + kRmqBlock);
    for (int64_t bj = 0; bj < bc; ++bj) {
      const int64_t j0 = bj * kRmqBlock;
      const int64_t j1 = std::min(cc, j0 + kRmqBlock);
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      for (int64_t i = i0; i < i1; ++i) {
        const size_t base = static_cast<size_t>(i * cc);
        double row_mn;
        double row_mx;
        simd::MinMaxReduce(level->min.data() + base + j0,
                           level->max.data() + base + j0, j1 - j0, &row_mn,
                           &row_mx);
        mn = std::min(mn, row_mn);
        mx = std::max(mx, row_mx);
      }
      double* e = entry(0, 0, bi, bj);
      e[0] = mn;
      e[1] = mx;
    }
  }
  // (0, kc): double along the column dimension. Entries that would run
  // off the end copy the clamped window.
  for (int64_t kc = 1; kc < level->rmq_rows_c; ++kc) {
    const int64_t half = int64_t{1} << (kc - 1);
    for (int64_t bi = 0; bi < br; ++bi) {
      for (int64_t bj = 0; bj < bc; ++bj) {
        const double* a = entry(0, kc - 1, bi, bj);
        const double* b =
            entry(0, kc - 1, bi, std::min(bc - 1, bj + half));
        double* e = entry(0, kc, bi, bj);
        if (bj + half < bc) {
          e[0] = std::min(a[0], b[0]);
          e[1] = std::max(a[1], b[1]);
        } else {
          e[0] = a[0];
          e[1] = a[1];
        }
      }
    }
  }
  // (kr, kc) for kr >= 1: double along the row dimension on top of every
  // column power.
  for (int64_t kr = 1; kr < level->rmq_rows_r; ++kr) {
    const int64_t half = int64_t{1} << (kr - 1);
    for (int64_t kc = 0; kc < level->rmq_rows_c; ++kc) {
      for (int64_t bi = 0; bi < br; ++bi) {
        for (int64_t bj = 0; bj < bc; ++bj) {
          const double* a = entry(kr - 1, kc, bi, bj);
          const double* b =
              entry(kr - 1, kc, std::min(br - 1, bi + half), bj);
          double* e = entry(kr, kc, bi, bj);
          if (bi + half < br) {
            e[0] = std::min(a[0], b[0]);
            e[1] = std::max(a[1], b[1]);
          } else {
            e[0] = a[0];
            e[1] = a[1];
          }
        }
      }
    }
  }

  // Per-row / per-column 1-D doubling tables (fringe + boundary strips).
  // Entry layout documented on Level: {min(min), max(max), max(min),
  // min(max)} per (power, line, start) position.
  level->rmq1_rows_c = Log2Floor(cap_c) + 1;
  level->rmq1_rows_r = Log2Floor(cap_r) + 1;
  level->rmq_row.assign(
      static_cast<size_t>(level->rmq1_rows_c * cr * cc * 4), 0.0);
  level->rmq_col.assign(
      static_cast<size_t>(level->rmq1_rows_r * cr * cc * 4), 0.0);
  const auto row_entry = [&](int64_t k, int64_t i, int64_t j) -> double* {
    return level->rmq_row.data() + ((k * cr + i) * cc + j) * 4;
  };
  const auto col_entry = [&](int64_t k, int64_t j, int64_t i) -> double* {
    return level->rmq_col.data() + ((k * cc + j) * cr + i) * 4;
  };
  for (int64_t i = 0; i < cr; ++i) {
    for (int64_t j = 0; j < cc; ++j) {
      const double mn = level->min[static_cast<size_t>(i * cc + j)];
      const double mx = level->max[static_cast<size_t>(i * cc + j)];
      double* r = row_entry(0, i, j);
      r[0] = mn;
      r[1] = mx;
      r[2] = mn;
      r[3] = mx;
      double* c = col_entry(0, j, i);
      c[0] = mn;
      c[1] = mx;
      c[2] = mn;
      c[3] = mx;
    }
  }
  const auto combine = [](const double* a, const double* b, double* e) {
    e[0] = std::min(a[0], b[0]);
    e[1] = std::max(a[1], b[1]);
    e[2] = std::max(a[2], b[2]);
    e[3] = std::min(a[3], b[3]);
  };
  const auto copy4 = [](const double* a, double* e) {
    e[0] = a[0];
    e[1] = a[1];
    e[2] = a[2];
    e[3] = a[3];
  };
  for (int64_t k = 1; k < level->rmq1_rows_c; ++k) {
    const int64_t half = int64_t{1} << (k - 1);
    for (int64_t i = 0; i < cr; ++i) {
      for (int64_t j = 0; j < cc; ++j) {
        const double* a = row_entry(k - 1, i, j);
        double* e = row_entry(k, i, j);
        if (j + half < cc) {
          combine(a, row_entry(k - 1, i, j + half), e);
        } else {
          copy4(a, e);
        }
      }
    }
  }
  for (int64_t k = 1; k < level->rmq1_rows_r; ++k) {
    const int64_t half = int64_t{1} << (k - 1);
    for (int64_t j = 0; j < cc; ++j) {
      for (int64_t i = 0; i < cr; ++i) {
        const double* a = col_entry(k - 1, j, i);
        double* e = col_entry(k, j, i);
        if (i + half < cr) {
          combine(a, col_entry(k - 1, j, i + half), e);
        } else {
          copy4(a, e);
        }
      }
    }
  }
}

Result<std::shared_ptr<GridSynopsis>> GridSynopsis::Build(
    const array::Grid& grid, GridSynopsisOptions options) {
  if (options.cell_sizes.empty()) {
    return InvalidArgumentError("grid synopsis needs at least one level");
  }
  for (size_t i = 0; i < options.cell_sizes.size(); ++i) {
    if (options.cell_sizes[i] <= 0) {
      return InvalidArgumentError("cell sizes must be positive");
    }
    if (i > 0 && options.cell_sizes[i] >= options.cell_sizes[i - 1]) {
      return InvalidArgumentError("cell sizes must be strictly decreasing");
    }
  }
  if (grid.rows() == 0 || grid.cols() == 0) {
    return InvalidArgumentError("cannot summarize an empty grid");
  }
  if (options.max_cells_per_query < 4) {
    return InvalidArgumentError("max_cells_per_query must be at least 4");
  }

  auto syn = std::shared_ptr<GridSynopsis>(new GridSynopsis());
  syn->rows_ = grid.rows();
  syn->cols_ = grid.cols();
  syn->max_cells_per_query_ = options.max_cells_per_query;

  const size_t num_levels = options.cell_sizes.size();
  syn->levels_.resize(num_levels);
  for (size_t i = 0; i < num_levels; ++i) {
    syn->levels_[i].cell_size = options.cell_sizes[i];
  }

  // Bottom-up build: only the finest level scans the base grid; each
  // coarser level aggregates the next finer one when its cell size
  // divides evenly, falling back to a base scan otherwise.
  BuildLevelFromGrid(&syn->levels_[num_levels - 1], grid);
  for (size_t i = num_levels - 1; i-- > 0;) {
    Level& level = syn->levels_[i];
    const Level& finer = syn->levels_[i + 1];
    if (level.cell_size % finer.cell_size == 0) {
      BuildLevelFromFiner(&level, finer, grid.rows(), grid.cols());
    } else {
      BuildLevelFromGrid(&level, grid);
    }
  }
  for (size_t i = 0; i < num_levels; ++i) {
    syn->FinalizeLevel(&syn->levels_[i], /*is_coarsest=*/i == 0);
  }

  const Level& coarsest = syn->levels_.front();
  double glo;
  double ghi;
  simd::MinMaxReduce(coarsest.min.data(), coarsest.max.data(),
                     coarsest.cell_rows * coarsest.cell_cols, &glo, &ghi);
  syn->global_range_ = Interval(glo, ghi);
  return syn;
}

size_t GridSynopsis::PickLevelIndex(int64_t r0, int64_t r1, int64_t c0,
                                    int64_t c1) const {
  // Worst-case overlapped-cell estimate, unchanged from the original
  // per-cell implementation so both paths always answer at the same
  // level (the differential replica depends on this).
  size_t chosen = 0;
  for (size_t li = 0; li < levels_.size(); ++li) {
    const Level& level = levels_[li];
    const int64_t cells =
        (level.Cell(r1 - r0) + 2) * (level.Cell(c1 - c0) + 2);
    if (cells <= max_cells_per_query_) chosen = li;
  }
  return chosen;
}

const GridSynopsis::Level& GridSynopsis::PickLevel(int64_t r0, int64_t r1,
                                                   int64_t c0,
                                                   int64_t c1) const {
  return levels_[PickLevelIndex(r0, r1, c0, c1)];
}

std::pair<const double*, const double*> GridSynopsis::RowEntries(
    const Level& level, int64_t i, int64_t j0, int64_t j1) {
  const int64_t k = Log2Floor(j1 - j0 + 1);
  DQR_CHECK(k < level.rmq1_rows_c);
  const int64_t j2 = j1 + 1 - (int64_t{1} << k);
  const double* base =
      level.rmq_row.data() + (k * level.cell_rows + i) * level.cell_cols * 4;
  return {base + j0 * 4, base + j2 * 4};
}

std::pair<const double*, const double*> GridSynopsis::ColEntries(
    const Level& level, int64_t j, int64_t i0, int64_t i1) {
  const int64_t k = Log2Floor(i1 - i0 + 1);
  DQR_CHECK(k < level.rmq1_rows_r);
  const int64_t i2 = i1 + 1 - (int64_t{1} << k);
  const double* base =
      level.rmq_col.data() + (k * level.cell_cols + j) * level.cell_rows * 4;
  return {base + i0 * 4, base + i2 * 4};
}

void GridSynopsis::RectMinMax(const Level& level, int64_t i0, int64_t i1,
                              int64_t j0, int64_t j1, double* mn_out,
                              double* mx_out) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const auto take = [&](const double* e) {
    lo = std::min(lo, e[0]);
    hi = std::max(hi, e[1]);
  };
  // Rectangles under two blocks in either dimension may not contain a
  // full aligned block pair in that dimension; two 1-D lookups per line
  // along the short dimension cover them.
  if (i1 - i0 + 1 < 2 * kRmqBlock) {
    for (int64_t i = i0; i <= i1; ++i) {
      const auto [a, b] = RowEntries(level, i, j0, j1);
      take(a);
      take(b);
    }
    *mn_out = lo;
    *mx_out = hi;
    return;
  }
  if (j1 - j0 + 1 < 2 * kRmqBlock) {
    for (int64_t j = j0; j <= j1; ++j) {
      const auto [a, b] = ColEntries(level, j, i0, i1);
      take(a);
      take(b);
    }
    *mn_out = lo;
    *mx_out = hi;
    return;
  }
  const int64_t bi_s = CeilDiv(i0, kRmqBlock);
  const int64_t bi_e = (i1 + 1) / kRmqBlock;  // full block rows [bi_s, bi_e)
  const int64_t bj_s = CeilDiv(j0, kRmqBlock);
  const int64_t bj_e = (j1 + 1) / kRmqBlock;
  const int64_t kr = Log2Floor(bi_e - bi_s);
  const int64_t kc = Log2Floor(bj_e - bj_s);
  DQR_CHECK(kr < level.rmq_rows_r && kc < level.rmq_rows_c);
  const auto entry = [&](int64_t i, int64_t j) -> const double* {
    return level.rmq.data() +
           (((kr * level.rmq_rows_c + kc) * level.block_rows + i) *
                level.block_cols +
            j) *
               2;
  };
  const int64_t i2 = bi_e - (int64_t{1} << kr);
  const int64_t j2 = bj_e - (int64_t{1} << kc);
  for (const double* e :
       {entry(bi_s, bj_s), entry(bi_s, j2), entry(i2, bj_s), entry(i2, j2)}) {
    lo = std::min(lo, e[0]);
    hi = std::max(hi, e[1]);
  }
  // Fringe lines around the full-block interior, two 1-D lookups each.
  // Fringe columns span the whole row range; the overlap with the fringe
  // rows is harmless for min/max.
  for (int64_t i = i0; i < bi_s * kRmqBlock; ++i) {
    const auto [a, b] = RowEntries(level, i, j0, j1);
    take(a);
    take(b);
  }
  for (int64_t i = bi_e * kRmqBlock; i <= i1; ++i) {
    const auto [a, b] = RowEntries(level, i, j0, j1);
    take(a);
    take(b);
  }
  for (int64_t j = j0; j < bj_s * kRmqBlock; ++j) {
    const auto [a, b] = ColEntries(level, j, i0, i1);
    take(a);
    take(b);
  }
  for (int64_t j = bj_e * kRmqBlock; j <= j1; ++j) {
    const auto [a, b] = ColEntries(level, j, i0, i1);
    take(a);
    take(b);
  }
  *mn_out = lo;
  *mx_out = hi;
}

double GridSynopsis::RectMin(const Level& level, int64_t i0, int64_t i1,
                             int64_t j0, int64_t j1) {
  double mn;
  double mx;
  RectMinMax(level, i0, i1, j0, j1, &mn, &mx);
  return mn;
}

double GridSynopsis::RectMax(const Level& level, int64_t i0, int64_t i1,
                             int64_t j0, int64_t j1) {
  double mn;
  double mx;
  RectMinMax(level, i0, i1, j0, j1, &mn, &mx);
  return mx;
}

Interval GridSynopsis::ValueBounds(int64_t r0, int64_t r1, int64_t c0,
                                   int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  double mn;
  double mx;
  RectMinMax(level, level.Cell(r0), level.Cell(r1 - 1), level.Cell(c0),
             level.Cell(c1 - 1), &mn, &mx);
  return Interval(mn, mx);
}

Interval GridSynopsis::SumBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;
  const int64_t cc = level.cell_cols;
  const int64_t i_first = level.Cell(r0);
  const int64_t i_last = level.Cell(r1 - 1);
  const int64_t j_first = level.Cell(c0);
  const int64_t j_last = level.Cell(c1 - 1);

  double lo = 0.0;
  double hi = 0.0;
  // Interior block of fully covered cells, exact via prefix sums. A cell
  // (i, j) is fully covered iff its whole [i*cs, (i+1)*cs) x ... lies in
  // the rectangle (grid-edge cells may be smaller than cs; treat the last
  // row/column of cells as full when the rectangle reaches the grid
  // edge).
  const auto cell_r1 = [&](int64_t i) {
    return std::min(rows_, (i + 1) * cs);
  };
  const auto cell_c1 = [&](int64_t j) {
    return std::min(cols_, (j + 1) * cs);
  };
  const int64_t fi0 = (r0 % cs == 0) ? i_first : i_first + 1;
  const int64_t fi1 = (r1 >= cell_r1(i_last)) ? i_last + 1 : i_last;
  const int64_t fj0 = (c0 % cs == 0) ? j_first : j_first + 1;
  const int64_t fj1 = (c1 >= cell_c1(j_last)) ? j_last + 1 : j_last;
  if (fi0 < fi1 && fj0 < fj1) {
    const double interior = level.BlockSum(fi0, fi1, fj0, fj1);
    lo += interior;
    hi += interior;
  }

  // Boundary cells: prorate by overlap area. Visited in the same
  // row-major order as the original full walk (which tested every cell
  // and skipped the interior), so the FP accumulation is bit-identical.
  const auto add_cell = [&](int64_t i, int64_t j) {
    const size_t idx = static_cast<size_t>(i * cc + j);
    const int64_t rr0 = std::max(r0, i * cs);
    const int64_t rr1 = std::min(r1, cell_r1(i));
    const int64_t cc0 = std::max(c0, j * cs);
    const int64_t cc1 = std::min(c1, cell_c1(j));
    const double overlap = static_cast<double>((rr1 - rr0) * (cc1 - cc0));
    const double full = static_cast<double>(
        (cell_r1(i) - i * cs) * (cell_c1(j) - j * cs));
    if (overlap >= full) {
      lo += level.sum[idx];
      hi += level.sum[idx];
    } else {
      lo += overlap * level.min[idx];
      hi += overlap * level.max[idx];
    }
  };
  const bool has_interior = fi0 < fi1 && fj0 < fj1;
  for (int64_t i = i_first; i <= i_last; ++i) {
    if (!has_interior || i < fi0 || i >= fi1) {
      for (int64_t j = j_first; j <= j_last; ++j) add_cell(i, j);
    } else {
      for (int64_t j = j_first; j < fj0; ++j) add_cell(i, j);
      for (int64_t j = fj1; j <= j_last; ++j) add_cell(i, j);
    }
  }
  return Interval(lo, hi);
}

Interval GridSynopsis::AvgBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  const Interval sum = SumBounds(r0, r1, c0, c1);
  const double area = static_cast<double>((r1 - r0) * (c1 - c0));
  return Interval(sum.lo / area, sum.hi / area);
}

Interval GridSynopsis::MaxBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;
  const int64_t i_first = level.Cell(r0);
  const int64_t i_last = level.Cell(r1 - 1);
  const int64_t j_first = level.Cell(c0);
  const int64_t j_last = level.Cell(c1 - 1);

  // A cell is fully contained iff the rectangle reaches all four of its
  // edges; that can only fail for the first/last cell row and column.
  // Contained cells witness their max from below; an uncontained
  // boundary cell still guarantees its min is attained somewhere in the
  // overlap.
  const bool fr = r0 <= i_first * cs;
  const bool lr = std::min(rows_, (i_last + 1) * cs) <= r1;
  const bool fc = c0 <= j_first * cs;
  const bool lc = std::min(cols_, (j_last + 1) * cs) <= c1;
  const int64_t wi0 = i_first + (fr ? 0 : 1);
  const int64_t wi1 = i_last - (lr ? 0 : 1);
  const int64_t wj0 = j_first + (fc ? 0 : 1);
  const int64_t wj1 = j_last - (lc ? 0 : 1);

  // One decomposition serves both ends of the interval. The uncontained
  // boundary strips contribute their max-of-max (aggregate [1], joined
  // with the contained window's max it is exactly the whole-rectangle
  // upper bound) and their max-of-min (aggregate [2], the overlap
  // floor). Contained cells' mins are dominated by the window witness,
  // so restricting the floor to the strips matches the original
  // all-cell scan exactly.
  double strip_hi = -std::numeric_limits<double>::infinity();
  double floor = -std::numeric_limits<double>::infinity();
  const auto strip = [&](std::pair<const double*, const double*> e) {
    strip_hi = std::max(strip_hi, std::max(e.first[1], e.second[1]));
    floor = std::max(floor, std::max(e.first[2], e.second[2]));
  };
  if (!fr) strip(RowEntries(level, i_first, j_first, j_last));
  if (!lr) strip(RowEntries(level, i_last, j_first, j_last));
  if (!fc) strip(ColEntries(level, j_first, i_first, i_last));
  if (!lc) strip(ColEntries(level, j_last, i_first, i_last));

  if (wi0 > wi1 || wj0 > wj1) {
    // No contained cells — the strips cover the whole rectangle.
    return Interval(floor, strip_hi);
  }
  const double wmax = RectMax(level, wi0, wi1, wj0, wj1);
  return Interval(std::max(wmax, floor), std::max(wmax, strip_hi));
}

Interval GridSynopsis::MinBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;
  const int64_t i_first = level.Cell(r0);
  const int64_t i_last = level.Cell(r1 - 1);
  const int64_t j_first = level.Cell(c0);
  const int64_t j_last = level.Cell(c1 - 1);

  const bool fr = r0 <= i_first * cs;
  const bool lr = std::min(rows_, (i_last + 1) * cs) <= r1;
  const bool fc = c0 <= j_first * cs;
  const bool lc = std::min(cols_, (j_last + 1) * cs) <= c1;
  const int64_t wi0 = i_first + (fr ? 0 : 1);
  const int64_t wi1 = i_last - (lr ? 0 : 1);
  const int64_t wj0 = j_first + (fc ? 0 : 1);
  const int64_t wj1 = j_last - (lc ? 0 : 1);

  // Mirror of MaxBounds: the strips' min-of-min (aggregate [0]) joins
  // the window min into the whole-rectangle lower bound; their
  // min-of-max (aggregate [3]) is the overlap ceiling.
  double strip_lo = std::numeric_limits<double>::infinity();
  double ceil = std::numeric_limits<double>::infinity();
  const auto strip = [&](std::pair<const double*, const double*> e) {
    strip_lo = std::min(strip_lo, std::min(e.first[0], e.second[0]));
    ceil = std::min(ceil, std::min(e.first[3], e.second[3]));
  };
  if (!fr) strip(RowEntries(level, i_first, j_first, j_last));
  if (!lr) strip(RowEntries(level, i_last, j_first, j_last));
  if (!fc) strip(ColEntries(level, j_first, i_first, i_last));
  if (!lc) strip(ColEntries(level, j_last, i_first, i_last));

  if (wi0 > wi1 || wj0 > wj1) {
    return Interval(strip_lo, ceil);
  }
  const double wmin = RectMin(level, wi0, wi1, wj0, wj1);
  return Interval(std::min(wmin, strip_lo), std::min(wmin, ceil));
}

GridSynopsis::LevelView GridSynopsis::level_view(size_t index) const {
  DQR_CHECK(index < levels_.size());
  const Level& level = levels_[index];
  LevelView view;
  view.cell_size = level.cell_size;
  view.cell_rows = level.cell_rows;
  view.cell_cols = level.cell_cols;
  view.min = level.min.data();
  view.max = level.max.data();
  view.sum = level.sum.data();
  view.prefix_sum = level.prefix_sum.data();
  return view;
}

int64_t GridSynopsis::LevelMemoryBytes(size_t index) const {
  DQR_CHECK(index < levels_.size());
  const Level& level = levels_[index];
  return static_cast<int64_t>(
      (level.min.size() + level.max.size() + level.sum.size() +
       level.prefix_sum.size() + level.rmq.size() + level.rmq_row.size() +
       level.rmq_col.size()) *
      sizeof(double));
}

int64_t GridSynopsis::MemoryBytes() const {
  int64_t bytes = 0;
  for (size_t i = 0; i < levels_.size(); ++i) bytes += LevelMemoryBytes(i);
  return bytes;
}

}  // namespace dqr::synopsis
