#include "synopsis/grid_synopsis.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace dqr::synopsis {

double GridSynopsis::Level::BlockSum(int64_t i0, int64_t i1, int64_t j0,
                                     int64_t j1) const {
  if (i0 >= i1 || j0 >= j1) return 0.0;
  const int64_t stride = cell_cols + 1;
  const auto at = [&](int64_t i, int64_t j) {
    return prefix_sum[static_cast<size_t>(i * stride + j)];
  };
  return at(i1, j1) - at(i0, j1) - at(i1, j0) + at(i0, j0);
}

Result<std::shared_ptr<GridSynopsis>> GridSynopsis::Build(
    const array::Grid& grid, GridSynopsisOptions options) {
  if (options.cell_sizes.empty()) {
    return InvalidArgumentError("grid synopsis needs at least one level");
  }
  for (size_t i = 0; i < options.cell_sizes.size(); ++i) {
    if (options.cell_sizes[i] <= 0) {
      return InvalidArgumentError("cell sizes must be positive");
    }
    if (i > 0 && options.cell_sizes[i] >= options.cell_sizes[i - 1]) {
      return InvalidArgumentError("cell sizes must be strictly decreasing");
    }
  }
  if (grid.rows() == 0 || grid.cols() == 0) {
    return InvalidArgumentError("cannot summarize an empty grid");
  }
  if (options.max_cells_per_query < 4) {
    return InvalidArgumentError("max_cells_per_query must be at least 4");
  }

  auto syn = std::shared_ptr<GridSynopsis>(new GridSynopsis());
  syn->rows_ = grid.rows();
  syn->cols_ = grid.cols();
  syn->max_cells_per_query_ = options.max_cells_per_query;

  for (const int64_t cell_size : options.cell_sizes) {
    Level level;
    level.cell_size = cell_size;
    level.cell_rows = (grid.rows() + cell_size - 1) / cell_size;
    level.cell_cols = (grid.cols() + cell_size - 1) / cell_size;
    level.cells.reserve(
        static_cast<size_t>(level.cell_rows * level.cell_cols));
    for (int64_t i = 0; i < level.cell_rows; ++i) {
      for (int64_t j = 0; j < level.cell_cols; ++j) {
        const int64_t r0 = i * cell_size;
        const int64_t r1 = std::min(grid.rows(), r0 + cell_size);
        const int64_t c0 = j * cell_size;
        const int64_t c1 = std::min(grid.cols(), c0 + cell_size);
        const array::WindowAggregates agg =
            grid.AggregateRect(r0, r1, c0, c1);
        level.cells.push_back({agg.min, agg.max, agg.sum});
      }
    }
    // 2-D prefix sums of cell sums.
    const int64_t stride = level.cell_cols + 1;
    level.prefix_sum.assign(
        static_cast<size_t>((level.cell_rows + 1) * stride), 0.0);
    for (int64_t i = 0; i < level.cell_rows; ++i) {
      double row_sum = 0.0;
      for (int64_t j = 0; j < level.cell_cols; ++j) {
        row_sum += level.cell(i, j).sum;
        level.prefix_sum[static_cast<size_t>((i + 1) * stride + j + 1)] =
            level.prefix_sum[static_cast<size_t>(i * stride + j + 1)] +
            row_sum;
      }
    }
    syn->levels_.push_back(std::move(level));
  }

  Interval range = Interval::Empty();
  for (const SynopsisCell& cell : syn->levels_.front().cells) {
    range = range.Union(Interval(cell.min, cell.max));
  }
  syn->global_range_ = range;
  return syn;
}

const GridSynopsis::Level& GridSynopsis::PickLevel(int64_t r0, int64_t r1,
                                                   int64_t c0,
                                                   int64_t c1) const {
  const Level* chosen = &levels_.front();
  for (const Level& level : levels_) {
    const int64_t cells = ((r1 - r0) / level.cell_size + 2) *
                          ((c1 - c0) / level.cell_size + 2);
    if (cells <= max_cells_per_query_) chosen = &level;
  }
  return *chosen;
}

Interval GridSynopsis::ValueBounds(int64_t r0, int64_t r1, int64_t c0,
                                   int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;
  Interval out = Interval::Empty();
  for (int64_t i = r0 / cs; i <= (r1 - 1) / cs; ++i) {
    for (int64_t j = c0 / cs; j <= (c1 - 1) / cs; ++j) {
      const SynopsisCell& cell = level.cell(i, j);
      out = out.Union(Interval(cell.min, cell.max));
    }
  }
  return out;
}

Interval GridSynopsis::SumBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;
  const int64_t i_first = r0 / cs;
  const int64_t i_last = (r1 - 1) / cs;
  const int64_t j_first = c0 / cs;
  const int64_t j_last = (c1 - 1) / cs;

  double lo = 0.0;
  double hi = 0.0;
  // Interior block of fully covered cells, exact via prefix sums. A cell
  // (i, j) is fully covered iff its whole [i*cs, (i+1)*cs) x ... lies in
  // the rectangle (grid-edge cells may be smaller than cs; treat the last
  // row/column of cells as full when the rectangle reaches the grid
  // edge).
  const auto cell_r1 = [&](int64_t i) {
    return std::min(rows_, (i + 1) * cs);
  };
  const auto cell_c1 = [&](int64_t j) {
    return std::min(cols_, (j + 1) * cs);
  };
  const int64_t fi0 = (r0 % cs == 0) ? i_first : i_first + 1;
  const int64_t fi1 = (r1 >= cell_r1(i_last)) ? i_last + 1 : i_last;
  const int64_t fj0 = (c0 % cs == 0) ? j_first : j_first + 1;
  const int64_t fj1 = (c1 >= cell_c1(j_last)) ? j_last + 1 : j_last;
  if (fi0 < fi1 && fj0 < fj1) {
    const double interior = level.BlockSum(fi0, fi1, fj0, fj1);
    lo += interior;
    hi += interior;
  }

  // Boundary cells: prorate by overlap area.
  for (int64_t i = i_first; i <= i_last; ++i) {
    for (int64_t j = j_first; j <= j_last; ++j) {
      const bool interior =
          i >= fi0 && i < fi1 && j >= fj0 && j < fj1;
      if (interior) continue;
      const SynopsisCell& cell = level.cell(i, j);
      const int64_t rr0 = std::max(r0, i * cs);
      const int64_t rr1 = std::min(r1, cell_r1(i));
      const int64_t cc0 = std::max(c0, j * cs);
      const int64_t cc1 = std::min(c1, cell_c1(j));
      const double overlap =
          static_cast<double>((rr1 - rr0) * (cc1 - cc0));
      const double full =
          static_cast<double>((cell_r1(i) - i * cs) *
                              (cell_c1(j) - j * cs));
      if (overlap >= full) {
        lo += cell.sum;
        hi += cell.sum;
      } else {
        lo += overlap * cell.min;
        hi += overlap * cell.max;
      }
    }
  }
  return Interval(lo, hi);
}

Interval GridSynopsis::AvgBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  const Interval sum = SumBounds(r0, r1, c0, c1);
  const double area = static_cast<double>((r1 - r0) * (c1 - c0));
  return Interval(sum.lo / area, sum.hi / area);
}

Interval GridSynopsis::MaxBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;

  double upper = -std::numeric_limits<double>::infinity();
  double witness = -std::numeric_limits<double>::infinity();
  double overlap_floor = -std::numeric_limits<double>::infinity();
  bool have_contained = false;
  for (int64_t i = r0 / cs; i <= (r1 - 1) / cs; ++i) {
    for (int64_t j = c0 / cs; j <= (c1 - 1) / cs; ++j) {
      const SynopsisCell& cell = level.cell(i, j);
      upper = std::max(upper, cell.max);
      overlap_floor = std::max(overlap_floor, cell.min);
      const int64_t rr1 = std::min(rows_, (i + 1) * cs);
      const int64_t cc1 = std::min(cols_, (j + 1) * cs);
      if (r0 <= i * cs && rr1 <= r1 && c0 <= j * cs && cc1 <= c1) {
        have_contained = true;
        witness = std::max(witness, cell.max);
      }
    }
  }
  const double lower =
      have_contained ? std::max(witness, overlap_floor) : overlap_floor;
  return Interval(lower, upper);
}

Interval GridSynopsis::MinBounds(int64_t r0, int64_t r1, int64_t c0,
                                 int64_t c1) const {
  DQR_CHECK(0 <= r0 && r0 < r1 && r1 <= rows_);
  DQR_CHECK(0 <= c0 && c0 < c1 && c1 <= cols_);
  queries_.Add();
  const Level& level = PickLevel(r0, r1, c0, c1);
  const int64_t cs = level.cell_size;

  double lower = std::numeric_limits<double>::infinity();
  double witness = std::numeric_limits<double>::infinity();
  double overlap_ceil = std::numeric_limits<double>::infinity();
  bool have_contained = false;
  for (int64_t i = r0 / cs; i <= (r1 - 1) / cs; ++i) {
    for (int64_t j = c0 / cs; j <= (c1 - 1) / cs; ++j) {
      const SynopsisCell& cell = level.cell(i, j);
      lower = std::min(lower, cell.min);
      overlap_ceil = std::min(overlap_ceil, cell.max);
      const int64_t rr1 = std::min(rows_, (i + 1) * cs);
      const int64_t cc1 = std::min(cols_, (j + 1) * cs);
      if (r0 <= i * cs && rr1 <= r1 && c0 <= j * cs && cc1 <= c1) {
        have_contained = true;
        witness = std::min(witness, cell.min);
      }
    }
  }
  const double upper =
      have_contained ? std::min(witness, overlap_ceil) : overlap_ceil;
  return Interval(lower, upper);
}

int64_t GridSynopsis::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Level& level : levels_) {
    bytes += static_cast<int64_t>(level.cells.size() *
                                  sizeof(SynopsisCell));
    bytes +=
        static_cast<int64_t>(level.prefix_sum.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace dqr::synopsis
