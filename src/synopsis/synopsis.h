#ifndef DQR_SYNOPSIS_SYNOPSIS_H_
#define DQR_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "array/array.h"
#include "common/interval.h"
#include "common/sharded_counter.h"
#include "common/status.h"

namespace dqr::synopsis {

// Construction parameters for a multi-resolution synopsis.
struct SynopsisOptions {
  // Cell sizes per level, coarsest first. Each level covers the whole
  // array; queries pick the finest level that keeps the scanned cell count
  // within `max_cells_per_query`, so estimates tighten as search domains
  // shrink toward leaves — the behaviour §3 of the paper relies on
  // ("estimations tend to become better closer to leaves").
  //
  // When every cell size is a multiple of the next finer one (the default
  // is an 8x chain), Build aggregates each coarser level from the next
  // finer level's cells instead of rescanning the base array — O(N +
  // cells) instead of O(levels * N). Non-divisible chains still work; the
  // offending level just falls back to a base-array scan.
  std::vector<int64_t> cell_sizes = {65536, 8192, 1024, 128};
  int64_t max_cells_per_query = 64;
};

// Aggregate summary of one synopsis cell. Retained as the exchange type
// for the 2-D GridSynopsis; the 1-D Synopsis stores its cells as
// structure-of-arrays (see Synopsis::LevelView).
struct SynopsisCell {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

// A lossy, in-memory, multi-resolution aggregate summary of an Array — the
// structure the Searchlight Solver searches instead of the base data. All
// bound queries are *sound*: the returned Interval is guaranteed to contain
// the exact value of the corresponding aggregate over the base array, so
// pruning on disjointness never loses a valid result, while leaves may
// still be false positives that the Validator filters.
//
// This is the hottest function family in the system (every propagation
// step and every BRP/BRK computation at a fail goes through it), so the
// estimator is built as a constant-time kernel:
//   * cells live in structure-of-arrays form (min[] / max[] / sum[] /
//     prefix_sum[]) — dense homogeneous memory that scans touch linearly;
//   * per-level block sparse tables (doubling RMQ over blocks of
//     kRmqBlock cells) answer any full-cell min/max span with two
//     overlapping power-of-two lookups plus at most kRmqBlock - 1 direct
//     cell reads on each side — O(1) regardless of span;
//   * sums use prefix sums; only the two boundary cells get the
//     partial-overlap proration, via one shared edge helper;
//   * level selection is precomputed span thresholds (no per-level
//     division on the common path);
//   * the query counter is sharded per thread (cache-line padded) so
//     concurrent instances never contend on one counter line.
//
// Thread-compatible for reads after Build().
class Synopsis {
 public:
  // Builds the cell grids: one scan of `array` for the finest level, then
  // coarser levels aggregate bottom-up from the next finer level when
  // cell sizes divide evenly (exact for min/max; sums may differ from a
  // direct scan by FP rounding only). The synopsis copies what it needs
  // and holds no reference. Resets no stats on `array`; callers typically
  // call array.ResetAccessStats() afterwards since synopsis construction
  // is an offline step in the modelled system.
  static Result<std::shared_ptr<Synopsis>> Build(const array::Array& array,
                                                 SynopsisOptions options);

  Synopsis(const Synopsis&) = delete;
  Synopsis& operator=(const Synopsis&) = delete;

  int64_t array_length() const { return length_; }

  // Bounds on the individual cell values within [lo, hi). Sound for any
  // aggregate of values in that span (e.g. an avg/max over *any* window
  // contained in the span).
  Interval ValueBounds(int64_t lo, int64_t hi) const;

  // Bounds on sum over exactly the window [lo, hi): full cells contribute
  // their exact sums; partially overlapped cells contribute
  // [overlap * cell.min, overlap * cell.max].
  Interval SumBounds(int64_t lo, int64_t hi) const;

  // SumBounds divided by the window length.
  Interval AvgBounds(int64_t lo, int64_t hi) const;

  // Bounds on max over exactly [lo, hi). Lower bound: the largest cell max
  // among fully contained cells (the witness lies inside the window), or
  // the largest cell min among overlapped cells if none is contained.
  Interval MaxBounds(int64_t lo, int64_t hi) const;

  // Bounds on min over exactly [lo, hi); mirror image of MaxBounds.
  Interval MinBounds(int64_t lo, int64_t hi) const;

  // Global [min, max] of the array; the default normalization range for
  // relaxation distances when a constraint declares no explicit range.
  Interval global_value_range() const { return global_range_; }

  // Rough memory footprint of the cell grids and sparse tables, for stats.
  int64_t MemoryBytes() const;

  // Number of interval queries served since construction/reset; summed
  // over the per-thread shards.
  int64_t queries_served() const { return queries_.Sum(); }
  void ResetQueryCount() { queries_.Reset(); }

  // --- introspection (tests, benchmarks, tooling) ---

  // Read-only view of one level's cell arrays. Pointers stay valid for
  // the synopsis' lifetime. `prefix_sum` has num_cells + 1 entries.
  struct LevelView {
    int64_t cell_size = 0;
    int64_t num_cells = 0;
    const double* min = nullptr;
    const double* max = nullptr;
    const double* sum = nullptr;
    const double* prefix_sum = nullptr;
  };

  size_t num_levels() const { return levels_.size(); }
  LevelView level_view(size_t index) const;

  // One level's share of MemoryBytes() (cell arrays + sparse tables);
  // lets benchmarks report the per-level cost of the RMQ acceleration.
  int64_t LevelMemoryBytes(size_t index) const;

  // Index (into level_view) of the level a [lo, hi) query would use:
  // the finest level whose exact overlapped-cell count stays within the
  // per-query budget, falling back to the coarsest. Does not count as a
  // served query.
  size_t PickLevelIndex(int64_t lo, int64_t hi) const;

 private:
  // Cells per sparse-table block. Blocked tables cost
  // rows * num_cells / kRmqBlock doubles per aggregate instead of the
  // rows * num_cells of a plain sparse table, which is what keeps the
  // per-level memory growth under 2x (see DESIGN.md "Estimator fast
  // path"); the price is <= kRmqBlock - 1 direct cell reads per edge.
  static constexpr int64_t kRmqBlock = 4;

  struct Level {
    int64_t cell_size = 0;
    int64_t num_cells = 0;

    // Structure-of-arrays cell aggregates; each vector has num_cells
    // entries, prefix_sum has num_cells + 1 (prefix_sum[i] = sum of cells
    // [0, i)).
    std::vector<double> min;
    std::vector<double> max;
    std::vector<double> sum;
    std::vector<double> prefix_sum;

    // Doubling sparse tables over blocks of kRmqBlock cells, stored
    // row-major with rows padded to num_blocks entries: row r entry b
    // aggregates blocks [b, min(b + 2^r, num_blocks)). Rows are built
    // only up to what queries routed to this level can span. The min and
    // max tables are interleaved ({min, max} pair per entry, at index
    // (r * num_blocks + b) * 2) so a fused min+max lookup touches one
    // cache line per block position instead of two.
    int64_t num_blocks = 0;
    int64_t rmq_rows = 0;
    std::vector<double> rmq;

    // Precomputed level-selection thresholds: spans <= span_fits_any fit
    // the per-query cell budget at any alignment; spans in
    // (span_fits_any, span_fits_aligned] fit only for favourable
    // alignments and need the exact cell count.
    int64_t span_fits_any = 0;
    int64_t span_fits_aligned = 0;
  };

  Synopsis() = default;

  static void BuildLevelFromArray(Level* level, const array::Array& array);
  static void BuildLevelFromFiner(Level* level, const Level& finer,
                                  int64_t length);
  void FinalizeLevel(Level* level, bool is_coarsest) const;

  // Exact min/max over cells [first, last] (inclusive) of a level: two
  // overlapping power-of-two block lookups plus direct reads of the <=
  // kRmqBlock - 1 cells outside full blocks on each side.
  static double CellRangeMin(const Level& level, int64_t first,
                             int64_t last);
  static double CellRangeMax(const Level& level, int64_t first,
                             int64_t last);
  // Both at once, sharing the block-index math and edge loops — the
  // ValueBounds fast path.
  static void CellRangeMinMax(const Level& level, int64_t first,
                              int64_t last, double* mn, double* mx);

  // Adds boundary cell `c`'s contribution to a [lo_sum, hi_sum] window-sum
  // bound: the exact cell sum when `overlap` covers the whole cell,
  // otherwise the [overlap * min, overlap * max] proration. Shared by the
  // leading and trailing edge of SumBounds.
  void AddSumEdgeCell(const Level& level, int64_t c, int64_t overlap,
                      double* lo_sum, double* hi_sum) const;

  int64_t length_ = 0;
  int64_t max_cells_per_query_ = 64;
  Interval global_range_ = Interval::Empty();
  std::vector<Level> levels_;  // coarsest first
  mutable ShardedCounter queries_;
};

}  // namespace dqr::synopsis

#endif  // DQR_SYNOPSIS_SYNOPSIS_H_
