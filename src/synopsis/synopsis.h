#ifndef DQR_SYNOPSIS_SYNOPSIS_H_
#define DQR_SYNOPSIS_SYNOPSIS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "array/array.h"
#include "common/interval.h"
#include "common/status.h"

namespace dqr::synopsis {

// Construction parameters for a multi-resolution synopsis.
struct SynopsisOptions {
  // Cell sizes per level, coarsest first. Each level covers the whole
  // array; queries pick the finest level that keeps the scanned cell count
  // within `max_cells_per_query`, so estimates tighten as search domains
  // shrink toward leaves — the behaviour §3 of the paper relies on
  // ("estimations tend to become better closer to leaves").
  std::vector<int64_t> cell_sizes = {65536, 8192, 1024, 128};
  int64_t max_cells_per_query = 64;
};

// Aggregate summary of one synopsis cell.
struct SynopsisCell {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

// A lossy, in-memory, multi-resolution aggregate summary of an Array — the
// structure the Searchlight Solver searches instead of the base data. All
// bound queries are *sound*: the returned Interval is guaranteed to contain
// the exact value of the corresponding aggregate over the base array, so
// pruning on disjointness never loses a valid result, while leaves may
// still be false positives that the Validator filters.
//
// Thread-compatible for reads after Build(); the query counter is atomic.
class Synopsis {
 public:
  // Scans `array` once per level and builds the cell grids. The array must
  // outlive nothing here: the synopsis copies what it needs and holds no
  // reference. Resets no stats on `array`; callers typically call
  // array.ResetAccessStats() afterwards since synopsis construction is an
  // offline step in the modelled system.
  static Result<std::shared_ptr<Synopsis>> Build(const array::Array& array,
                                                 SynopsisOptions options);

  Synopsis(const Synopsis&) = delete;
  Synopsis& operator=(const Synopsis&) = delete;

  int64_t array_length() const { return length_; }

  // Bounds on the individual cell values within [lo, hi). Sound for any
  // aggregate of values in that span (e.g. an avg/max over *any* window
  // contained in the span).
  Interval ValueBounds(int64_t lo, int64_t hi) const;

  // Bounds on sum over exactly the window [lo, hi): full cells contribute
  // their exact sums; partially overlapped cells contribute
  // [overlap * cell.min, overlap * cell.max].
  Interval SumBounds(int64_t lo, int64_t hi) const;

  // SumBounds divided by the window length.
  Interval AvgBounds(int64_t lo, int64_t hi) const;

  // Bounds on max over exactly [lo, hi). Lower bound: the largest cell max
  // among fully contained cells (the witness lies inside the window), or
  // the largest cell min among overlapped cells if none is contained.
  Interval MaxBounds(int64_t lo, int64_t hi) const;

  // Bounds on min over exactly [lo, hi); mirror image of MaxBounds.
  Interval MinBounds(int64_t lo, int64_t hi) const;

  // Global [min, max] of the array; the default normalization range for
  // relaxation distances when a constraint declares no explicit range.
  Interval global_value_range() const { return global_range_; }

  // Rough memory footprint of the cell grids, for stats.
  int64_t MemoryBytes() const;

  // Number of interval queries served since construction/reset.
  int64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }
  void ResetQueryCount() { queries_.store(0, std::memory_order_relaxed); }

 private:
  struct Level {
    int64_t cell_size = 0;
    std::vector<SynopsisCell> cells;
    // prefix_sum[i] = sum of cells [0, i); enables O(1) full-cell sums.
    std::vector<double> prefix_sum;
  };

  Synopsis() = default;

  // Finest level whose overlapped-cell count for [lo, hi) stays within the
  // per-query budget; falls back to the coarsest level.
  const Level& PickLevel(int64_t lo, int64_t hi) const;

  int64_t length_ = 0;
  int64_t max_cells_per_query_ = 64;
  Interval global_range_ = Interval::Empty();
  std::vector<Level> levels_;  // coarsest first
  mutable std::atomic<int64_t> queries_{0};
};

}  // namespace dqr::synopsis

#endif  // DQR_SYNOPSIS_SYNOPSIS_H_
