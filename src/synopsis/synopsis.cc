#include "synopsis/synopsis.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace dqr::synopsis {
namespace {

// floor(log2(v)) for v >= 1 without shift/UB hazards.
inline int64_t Log2Floor(int64_t v) {
  DQR_CHECK(v >= 1);
  return static_cast<int64_t>(std::bit_width(static_cast<uint64_t>(v))) - 1;
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

void Synopsis::BuildLevelFromArray(Level* level, const array::Array& array) {
  const int64_t cs = level->cell_size;
  const int64_t n = CeilDiv(array.length(), cs);
  level->num_cells = n;
  level->min.reserve(static_cast<size_t>(n));
  level->max.reserve(static_cast<size_t>(n));
  level->sum.reserve(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) {
    const int64_t lo = c * cs;
    const int64_t hi = std::min(array.length(), lo + cs);
    const array::WindowAggregates agg = array.AggregateWindow(lo, hi);
    level->min.push_back(agg.min);
    level->max.push_back(agg.max);
    level->sum.push_back(agg.sum);
  }
}

void Synopsis::BuildLevelFromFiner(Level* level, const Level& finer,
                                   int64_t length) {
  const int64_t cs = level->cell_size;
  DQR_CHECK(cs % finer.cell_size == 0);
  const int64_t ratio = cs / finer.cell_size;
  const int64_t n = CeilDiv(length, cs);
  level->num_cells = n;
  level->min.reserve(static_cast<size_t>(n));
  level->max.reserve(static_cast<size_t>(n));
  level->sum.reserve(static_cast<size_t>(n));
  // Because cs is a multiple of the finer cell size, the finer cells
  // [c * ratio, (c + 1) * ratio) tile this cell exactly (the array tail
  // just shortens the last finer cell), so min/max aggregate exactly and
  // sums differ from a base scan only by FP association.
  for (int64_t c = 0; c < n; ++c) {
    const int64_t f0 = c * ratio;
    const int64_t f1 = std::min(finer.num_cells, f0 + ratio);
    double mn = finer.min[static_cast<size_t>(f0)];
    double mx = finer.max[static_cast<size_t>(f0)];
    double sm = finer.sum[static_cast<size_t>(f0)];
    for (int64_t f = f0 + 1; f < f1; ++f) {
      mn = std::min(mn, finer.min[static_cast<size_t>(f)]);
      mx = std::max(mx, finer.max[static_cast<size_t>(f)]);
      sm += finer.sum[static_cast<size_t>(f)];
    }
    level->min.push_back(mn);
    level->max.push_back(mx);
    level->sum.push_back(sm);
  }
}

void Synopsis::FinalizeLevel(Level* level, bool is_coarsest) const {
  const int64_t n = level->num_cells;

  level->prefix_sum.reserve(static_cast<size_t>(n) + 1);
  level->prefix_sum.push_back(0.0);
  for (int64_t c = 0; c < n; ++c) {
    level->prefix_sum.push_back(level->prefix_sum.back() +
                                level->sum[static_cast<size_t>(c)]);
  }

  // Sparse tables only need rows for block counts a query routed here can
  // actually produce: any non-coarsest level is picked because its exact
  // cell count fits the budget; the coarsest also absorbs the fallback
  // for spans nothing else fits, so it gets the full table.
  const int64_t max_query_cells =
      is_coarsest ? n : std::min<int64_t>(n, max_cells_per_query_);
  level->num_blocks = CeilDiv(n, kRmqBlock);
  const int64_t max_blocks = std::clamp<int64_t>(
      max_query_cells / kRmqBlock, int64_t{1}, level->num_blocks);
  level->rmq_rows = Log2Floor(max_blocks) + 1;

  const size_t stride = static_cast<size_t>(level->num_blocks);
  level->rmq.assign(static_cast<size_t>(level->rmq_rows) * stride * 2,
                    0.0);

  // Row 0: block aggregates straight from the cell arrays.
  for (int64_t b = 0; b < level->num_blocks; ++b) {
    const int64_t c0 = b * kRmqBlock;
    const int64_t c1 = std::min(n, c0 + kRmqBlock);
    double mn = level->min[static_cast<size_t>(c0)];
    double mx = level->max[static_cast<size_t>(c0)];
    for (int64_t c = c0 + 1; c < c1; ++c) {
      mn = std::min(mn, level->min[static_cast<size_t>(c)]);
      mx = std::max(mx, level->max[static_cast<size_t>(c)]);
    }
    level->rmq[static_cast<size_t>(b) * 2] = mn;
    level->rmq[static_cast<size_t>(b) * 2 + 1] = mx;
  }
  // Row r doubles row r - 1. Entries whose window would run off the end
  // aggregate the clamped window [b, num_blocks) — never read by queries,
  // but kept sound instead of left undefined.
  for (int64_t r = 1; r < level->rmq_rows; ++r) {
    const double* prev = level->rmq.data() + (r - 1) * stride * 2;
    double* cur = level->rmq.data() + r * stride * 2;
    const int64_t half = int64_t{1} << (r - 1);
    for (int64_t b = 0; b < level->num_blocks; ++b) {
      if (b + half < level->num_blocks) {
        cur[b * 2] = std::min(prev[b * 2], prev[(b + half) * 2]);
        cur[b * 2 + 1] =
            std::max(prev[b * 2 + 1], prev[(b + half) * 2 + 1]);
      } else {
        cur[b * 2] = prev[b * 2];
        cur[b * 2 + 1] = prev[b * 2 + 1];
      }
    }
  }

  // Level-selection thresholds. Exact cell count for a window of span s at
  // alignment a is (a + s - 1) / cs - a / cs + 1: at worst
  // floor((s - 1) / cs) + 2, which fits the budget B iff s <= (B - 1)*cs;
  // at best ceil(s / cs), which can fit only if s <= B*cs. Levels with no
  // more cells than the budget fit every window outright.
  const int64_t b = max_cells_per_query_;
  const int64_t cs = level->cell_size;
  if (n <= b) {
    level->span_fits_any = length_;
  } else {
    level->span_fits_any = std::min(length_, (b - 1) * cs);
  }
  level->span_fits_aligned =
      cs > length_ / b ? length_ : std::min(length_, b * cs);
}

Result<std::shared_ptr<Synopsis>> Synopsis::Build(const array::Array& array,
                                                  SynopsisOptions options) {
  if (options.cell_sizes.empty()) {
    return InvalidArgumentError("synopsis needs at least one level");
  }
  for (size_t i = 0; i < options.cell_sizes.size(); ++i) {
    if (options.cell_sizes[i] <= 0) {
      return InvalidArgumentError("cell sizes must be positive");
    }
    if (i > 0 && options.cell_sizes[i] >= options.cell_sizes[i - 1]) {
      return InvalidArgumentError("cell sizes must be strictly decreasing");
    }
  }
  if (array.length() == 0) {
    return InvalidArgumentError("cannot summarize an empty array");
  }
  if (options.max_cells_per_query < 2) {
    return InvalidArgumentError("max_cells_per_query must be at least 2");
  }

  auto syn = std::shared_ptr<Synopsis>(new Synopsis());
  syn->length_ = array.length();
  syn->max_cells_per_query_ = options.max_cells_per_query;

  const size_t num_levels = options.cell_sizes.size();
  syn->levels_.resize(num_levels);
  for (size_t i = 0; i < num_levels; ++i) {
    syn->levels_[i].cell_size = options.cell_sizes[i];
  }

  // Bottom-up build: only the finest level scans the base array; each
  // coarser level aggregates the next finer one when its cell size
  // divides evenly, falling back to a base scan otherwise.
  BuildLevelFromArray(&syn->levels_[num_levels - 1], array);
  for (size_t i = num_levels - 1; i-- > 0;) {
    Level& level = syn->levels_[i];
    const Level& finer = syn->levels_[i + 1];
    if (level.cell_size % finer.cell_size == 0) {
      BuildLevelFromFiner(&level, finer, array.length());
    } else {
      BuildLevelFromArray(&level, array);
    }
  }
  for (size_t i = 0; i < num_levels; ++i) {
    syn->FinalizeLevel(&syn->levels_[i], /*is_coarsest=*/i == 0);
  }

  Interval range = Interval::Empty();
  const Level& coarsest = syn->levels_.front();
  for (int64_t c = 0; c < coarsest.num_cells; ++c) {
    range = range.Union(Interval(coarsest.min[static_cast<size_t>(c)],
                                 coarsest.max[static_cast<size_t>(c)]));
  }
  syn->global_range_ = range;
  return syn;
}

size_t Synopsis::PickLevelIndex(int64_t lo, int64_t hi) const {
  const int64_t span = hi - lo;
  // Levels are coarsest-first; the first fit walking finest-to-coarsest
  // is the answer, so small spans — the common case as search domains
  // shrink — resolve in one threshold comparison. Only spans in the
  // narrow alignment-dependent band pay the divisions for the exact
  // overlapped-cell count.
  for (size_t i = levels_.size(); i-- > 1;) {
    const Level& level = levels_[i];
    if (span <= level.span_fits_any) return i;
    if (span <= level.span_fits_aligned) {
      const int64_t cells =
          (hi - 1) / level.cell_size - lo / level.cell_size + 1;
      if (cells <= max_cells_per_query_) return i;
    }
  }
  return 0;  // the coarsest absorbs whatever fits nowhere else
}

Synopsis::LevelView Synopsis::level_view(size_t index) const {
  DQR_CHECK(index < levels_.size());
  const Level& level = levels_[index];
  LevelView view;
  view.cell_size = level.cell_size;
  view.num_cells = level.num_cells;
  view.min = level.min.data();
  view.max = level.max.data();
  view.sum = level.sum.data();
  view.prefix_sum = level.prefix_sum.data();
  return view;
}

double Synopsis::CellRangeMin(const Level& level, int64_t first,
                              int64_t last) {
  const double* mn = level.min.data();
  // For short ranges a direct scan of dense doubles beats the table: the
  // block lookups save nothing until the scan is several blocks long, and
  // ranges under 4 * kRmqBlock cells may not even contain a full aligned
  // block pair worth skipping. The scan itself is a SIMD reduction.
  if (last - first + 1 < 4 * kRmqBlock) {
    return simd::MinReduce(mn + first, last - first + 1);
  }
  const int64_t bs = CeilDiv(first, kRmqBlock);
  const int64_t be = (last + 1) / kRmqBlock;  // full blocks [bs, be)
  const int64_t k = Log2Floor(be - bs);
  DQR_CHECK(k < level.rmq_rows);
  const double* row = level.rmq.data() + k * level.num_blocks * 2;
  double out =
      std::min(row[bs * 2], row[(be - (int64_t{1} << k)) * 2]);
  for (int64_t c = first; c < bs * kRmqBlock; ++c) out = std::min(out, mn[c]);
  for (int64_t c = be * kRmqBlock; c <= last; ++c) out = std::min(out, mn[c]);
  return out;
}

double Synopsis::CellRangeMax(const Level& level, int64_t first,
                              int64_t last) {
  const double* mx = level.max.data();
  if (last - first + 1 < 4 * kRmqBlock) {
    return simd::MaxReduce(mx + first, last - first + 1);
  }
  const int64_t bs = CeilDiv(first, kRmqBlock);
  const int64_t be = (last + 1) / kRmqBlock;
  const int64_t k = Log2Floor(be - bs);
  DQR_CHECK(k < level.rmq_rows);
  const double* row = level.rmq.data() + k * level.num_blocks * 2;
  double out =
      std::max(row[bs * 2 + 1], row[(be - (int64_t{1} << k)) * 2 + 1]);
  for (int64_t c = first; c < bs * kRmqBlock; ++c) out = std::max(out, mx[c]);
  for (int64_t c = be * kRmqBlock; c <= last; ++c) out = std::max(out, mx[c]);
  return out;
}

void Synopsis::CellRangeMinMax(const Level& level, int64_t first,
                               int64_t last, double* mn_out,
                               double* mx_out) {
  const double* mn = level.min.data();
  const double* mx = level.max.data();
  if (last - first + 1 < 4 * kRmqBlock) {
    simd::MinMaxReduce(mn + first, mx + first, last - first + 1, mn_out,
                       mx_out);
    return;
  }
  const int64_t bs = CeilDiv(first, kRmqBlock);
  const int64_t be = (last + 1) / kRmqBlock;
  const int64_t k = Log2Floor(be - bs);
  DQR_CHECK(k < level.rmq_rows);
  const double* row = level.rmq.data() + k * level.num_blocks * 2;
  const int64_t b2 = be - (int64_t{1} << k);
  double lo = std::min(row[bs * 2], row[b2 * 2]);
  double hi = std::max(row[bs * 2 + 1], row[b2 * 2 + 1]);
  for (int64_t c = first; c < bs * kRmqBlock; ++c) {
    lo = std::min(lo, mn[c]);
    hi = std::max(hi, mx[c]);
  }
  for (int64_t c = be * kRmqBlock; c <= last; ++c) {
    lo = std::min(lo, mn[c]);
    hi = std::max(hi, mx[c]);
  }
  *mn_out = lo;
  *mx_out = hi;
}

Interval Synopsis::ValueBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.Add();
  const Level& level = levels_[PickLevelIndex(lo, hi)];
  const int64_t first = lo / level.cell_size;
  const int64_t last = (hi - 1) / level.cell_size;
  double mn;
  double mx;
  CellRangeMinMax(level, first, last, &mn, &mx);
  return Interval(mn, mx);
}

void Synopsis::AddSumEdgeCell(const Level& level, int64_t c, int64_t overlap,
                              double* lo_sum, double* hi_sum) const {
  const int64_t cell_lo = c * level.cell_size;
  const int64_t cell_hi = std::min(length_, cell_lo + level.cell_size);
  if (overlap == cell_hi - cell_lo) {
    *lo_sum += level.sum[static_cast<size_t>(c)];
    *hi_sum += level.sum[static_cast<size_t>(c)];
  } else {
    *lo_sum += static_cast<double>(overlap) *
               level.min[static_cast<size_t>(c)];
    *hi_sum += static_cast<double>(overlap) *
               level.max[static_cast<size_t>(c)];
  }
}

Interval Synopsis::SumBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.Add();
  const Level& level = levels_[PickLevelIndex(lo, hi)];
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  if (first == last) {
    const double overlap = static_cast<double>(hi - lo);
    return Interval(overlap * level.min[static_cast<size_t>(first)],
                    overlap * level.max[static_cast<size_t>(first)]);
  }

  double sum_lo = 0.0;
  double sum_hi = 0.0;
  // Leading partial cell, exact interior via prefix sums, trailing
  // partial cell — in this order, to keep the FP accumulation identical
  // to a left-to-right cell walk.
  AddSumEdgeCell(level, first, (first + 1) * cs - lo, &sum_lo, &sum_hi);
  if (last - first >= 2) {
    const double mid = level.prefix_sum[static_cast<size_t>(last)] -
                       level.prefix_sum[static_cast<size_t>(first + 1)];
    sum_lo += mid;
    sum_hi += mid;
  }
  AddSumEdgeCell(level, last, hi - last * cs, &sum_lo, &sum_hi);
  return Interval(sum_lo, sum_hi);
}

Interval Synopsis::AvgBounds(int64_t lo, int64_t hi) const {
  const Interval sum = SumBounds(lo, hi);
  const double len = static_cast<double>(hi - lo);
  return Interval(sum.lo / len, sum.hi / len);
}

Interval Synopsis::MaxBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.Add();
  const Level& level = levels_[PickLevelIndex(lo, hi)];
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  const double upper = CellRangeMax(level, first, last);

  // A cell is fully contained iff the window reaches both its edges; that
  // can only fail at the two boundary cells. Contained cells witness
  // their max from below; an uncontained boundary cell still guarantees
  // its min is attained somewhere in the window overlap.
  const bool first_contained = lo <= first * cs;
  const bool last_contained = std::min(length_, (last + 1) * cs) <= hi;
  const int64_t wf = first + (first_contained ? 0 : 1);
  const int64_t wl = last - (last_contained ? 0 : 1);

  double lower;
  if (first_contained && last_contained) {
    // Every cell is contained, so the span max itself is witnessed.
    lower = upper;
  } else if (wf <= wl) {
    lower = CellRangeMax(level, wf, wl);
    if (!first_contained) {
      lower = std::max(lower, level.min[static_cast<size_t>(first)]);
    }
    if (!last_contained) {
      lower = std::max(lower, level.min[static_cast<size_t>(last)]);
    }
  } else {
    // No contained cell: possible only when the window touches <= 2
    // cells, so the overlap floor is a direct read or two.
    lower = level.min[static_cast<size_t>(first)];
    if (last != first) {
      lower = std::max(lower, level.min[static_cast<size_t>(last)]);
    }
  }
  return Interval(lower, upper);
}

Interval Synopsis::MinBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.Add();
  const Level& level = levels_[PickLevelIndex(lo, hi)];
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  const double lower = CellRangeMin(level, first, last);

  const bool first_contained = lo <= first * cs;
  const bool last_contained = std::min(length_, (last + 1) * cs) <= hi;
  const int64_t wf = first + (first_contained ? 0 : 1);
  const int64_t wl = last - (last_contained ? 0 : 1);

  double upper;
  if (first_contained && last_contained) {
    upper = lower;
  } else if (wf <= wl) {
    upper = CellRangeMin(level, wf, wl);
    if (!first_contained) {
      upper = std::min(upper, level.max[static_cast<size_t>(first)]);
    }
    if (!last_contained) {
      upper = std::min(upper, level.max[static_cast<size_t>(last)]);
    }
  } else {
    upper = level.max[static_cast<size_t>(first)];
    if (last != first) {
      upper = std::min(upper, level.max[static_cast<size_t>(last)]);
    }
  }
  return Interval(lower, upper);
}

int64_t Synopsis::LevelMemoryBytes(size_t index) const {
  DQR_CHECK(index < levels_.size());
  const Level& level = levels_[index];
  return static_cast<int64_t>(
      (level.min.size() + level.max.size() + level.sum.size() +
       level.prefix_sum.size() + level.rmq.size()) *
      sizeof(double));
}

int64_t Synopsis::MemoryBytes() const {
  int64_t bytes = 0;
  for (size_t i = 0; i < levels_.size(); ++i) bytes += LevelMemoryBytes(i);
  return bytes;
}

}  // namespace dqr::synopsis
