#include "synopsis/synopsis.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dqr::synopsis {

Result<std::shared_ptr<Synopsis>> Synopsis::Build(const array::Array& array,
                                                  SynopsisOptions options) {
  if (options.cell_sizes.empty()) {
    return InvalidArgumentError("synopsis needs at least one level");
  }
  for (size_t i = 0; i < options.cell_sizes.size(); ++i) {
    if (options.cell_sizes[i] <= 0) {
      return InvalidArgumentError("cell sizes must be positive");
    }
    if (i > 0 && options.cell_sizes[i] >= options.cell_sizes[i - 1]) {
      return InvalidArgumentError("cell sizes must be strictly decreasing");
    }
  }
  if (array.length() == 0) {
    return InvalidArgumentError("cannot summarize an empty array");
  }
  if (options.max_cells_per_query < 2) {
    return InvalidArgumentError("max_cells_per_query must be at least 2");
  }

  auto syn = std::shared_ptr<Synopsis>(new Synopsis());
  syn->length_ = array.length();
  syn->max_cells_per_query_ = options.max_cells_per_query;

  for (const int64_t cell_size : options.cell_sizes) {
    Level level;
    level.cell_size = cell_size;
    const int64_t num_cells = (array.length() + cell_size - 1) / cell_size;
    level.cells.reserve(static_cast<size_t>(num_cells));
    level.prefix_sum.reserve(static_cast<size_t>(num_cells) + 1);
    level.prefix_sum.push_back(0.0);
    for (int64_t c = 0; c < num_cells; ++c) {
      const int64_t lo = c * cell_size;
      const int64_t hi = std::min(array.length(), lo + cell_size);
      const array::WindowAggregates agg = array.AggregateWindow(lo, hi);
      level.cells.push_back({agg.min, agg.max, agg.sum});
      level.prefix_sum.push_back(level.prefix_sum.back() + agg.sum);
    }
    syn->levels_.push_back(std::move(level));
  }

  Interval range = Interval::Empty();
  for (const SynopsisCell& cell : syn->levels_.front().cells) {
    range = range.Union(Interval(cell.min, cell.max));
  }
  syn->global_range_ = range;
  return syn;
}

const Synopsis::Level& Synopsis::PickLevel(int64_t lo, int64_t hi) const {
  const int64_t span = hi - lo;
  // Levels are coarsest-first; walk toward finer levels while the cell
  // count stays within budget.
  const Level* chosen = &levels_.front();
  for (const Level& level : levels_) {
    const int64_t cells = span / level.cell_size + 2;
    if (cells <= max_cells_per_query_) chosen = &level;
  }
  return *chosen;
}

Interval Synopsis::ValueBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Level& level = PickLevel(lo, hi);
  const int64_t first = lo / level.cell_size;
  const int64_t last = (hi - 1) / level.cell_size;
  Interval out = Interval::Empty();
  for (int64_t c = first; c <= last; ++c) {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(c)];
    out = out.Union(Interval(cell.min, cell.max));
  }
  return out;
}

Interval Synopsis::SumBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Level& level = PickLevel(lo, hi);
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  if (first == last) {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(first)];
    const double overlap = static_cast<double>(hi - lo);
    return Interval(overlap * cell.min, overlap * cell.max);
  }

  double sum_lo = 0.0;
  double sum_hi = 0.0;
  // Leading partial cell.
  {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(first)];
    const int64_t cell_hi = (first + 1) * cs;
    const int64_t overlap = cell_hi - lo;
    if (overlap == cs) {
      sum_lo += cell.sum;
      sum_hi += cell.sum;
    } else {
      sum_lo += static_cast<double>(overlap) * cell.min;
      sum_hi += static_cast<double>(overlap) * cell.max;
    }
  }
  // Fully covered middle cells: exact via prefix sums.
  if (last - first >= 2) {
    const double mid = level.prefix_sum[static_cast<size_t>(last)] -
                       level.prefix_sum[static_cast<size_t>(first + 1)];
    sum_lo += mid;
    sum_hi += mid;
  }
  // Trailing partial cell.
  {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(last)];
    const int64_t cell_lo = last * cs;
    const int64_t cell_end =
        std::min(length_, cell_lo + cs);
    const int64_t overlap = hi - cell_lo;
    if (overlap == cell_end - cell_lo) {
      sum_lo += cell.sum;
      sum_hi += cell.sum;
    } else {
      sum_lo += static_cast<double>(overlap) * cell.min;
      sum_hi += static_cast<double>(overlap) * cell.max;
    }
  }
  return Interval(sum_lo, sum_hi);
}

Interval Synopsis::AvgBounds(int64_t lo, int64_t hi) const {
  const Interval sum = SumBounds(lo, hi);
  const double len = static_cast<double>(hi - lo);
  return Interval(sum.lo / len, sum.hi / len);
}

Interval Synopsis::MaxBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Level& level = PickLevel(lo, hi);
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  double upper = -std::numeric_limits<double>::infinity();
  double contained_witness = -std::numeric_limits<double>::infinity();
  double overlap_floor = -std::numeric_limits<double>::infinity();
  bool have_contained = false;
  for (int64_t c = first; c <= last; ++c) {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(c)];
    upper = std::max(upper, cell.max);
    overlap_floor = std::max(overlap_floor, cell.min);
    const int64_t cell_lo = c * cs;
    const int64_t cell_hi = std::min(length_, cell_lo + cs);
    if (lo <= cell_lo && cell_hi <= hi) {
      have_contained = true;
      // The cell's maximum is attained inside the window, so it is a true
      // witness: max(window) >= cell.max.
      contained_witness = std::max(contained_witness, cell.max);
    }
  }
  const double lower = have_contained
                           ? std::max(contained_witness, overlap_floor)
                           : overlap_floor;
  return Interval(lower, upper);
}

Interval Synopsis::MinBounds(int64_t lo, int64_t hi) const {
  DQR_CHECK(lo >= 0 && lo < hi && hi <= length_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const Level& level = PickLevel(lo, hi);
  const int64_t cs = level.cell_size;
  const int64_t first = lo / cs;
  const int64_t last = (hi - 1) / cs;

  double lower = std::numeric_limits<double>::infinity();
  double contained_witness = std::numeric_limits<double>::infinity();
  double overlap_ceil = std::numeric_limits<double>::infinity();
  bool have_contained = false;
  for (int64_t c = first; c <= last; ++c) {
    const SynopsisCell& cell = level.cells[static_cast<size_t>(c)];
    lower = std::min(lower, cell.min);
    overlap_ceil = std::min(overlap_ceil, cell.max);
    const int64_t cell_lo = c * cs;
    const int64_t cell_hi = std::min(length_, cell_lo + cs);
    if (lo <= cell_lo && cell_hi <= hi) {
      have_contained = true;
      contained_witness = std::min(contained_witness, cell.min);
    }
  }
  const double upper = have_contained
                           ? std::min(contained_witness, overlap_ceil)
                           : overlap_ceil;
  return Interval(lower, upper);
}

int64_t Synopsis::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Level& level : levels_) {
    bytes += static_cast<int64_t>(level.cells.size() * sizeof(SynopsisCell));
    bytes += static_cast<int64_t>(level.prefix_sum.size() * sizeof(double));
  }
  return bytes;
}

}  // namespace dqr::synopsis
