#ifndef DQR_SYNOPSIS_GRID_SYNOPSIS_H_
#define DQR_SYNOPSIS_GRID_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "array/grid.h"
#include "common/interval.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "synopsis/synopsis.h"

namespace dqr::synopsis {

// Construction parameters for a two-dimensional multi-resolution
// synopsis: square cells, coarsest level first.
struct GridSynopsisOptions {
  std::vector<int64_t> cell_sizes = {512, 64, 16};
  // Budget on cells scanned per query; level selection picks the finest
  // level that stays within it.
  int64_t max_cells_per_query = 256;
};

// The 2-D counterpart of Synopsis: per-level grids of {min, max, sum}
// cells over an array::Grid, answering *sound* interval bounds for
// aggregates over arbitrary rectangles. Rectangles are half-open:
// rows [r0, r1) x cols [c0, c1).
//
// Like the 1-D Synopsis, this is a constant-time kernel rather than a
// per-cell scan (the original AoS implementation walked every overlapped
// cell per query; see DESIGN.md "Estimator fast path, 2-D"):
//   * cell aggregates live in structure-of-arrays form (row-major min[] /
//     max[] / sum[] planes plus a 2-D prefix-sum plane);
//   * a block-decomposed 2-D sparse table (doubling in both dimensions
//     over kRmqBlock x kRmqBlock blocks) answers any full-block
//     sub-rectangle min/max with four corner lookups; the <= kRmqBlock-1
//     cell fringe on each side and the one-cell boundary strips of
//     MaxBounds/MinBounds are answered by per-row / per-column 1-D
//     doubling tables, so every bounds query is a fixed number of table
//     lookups with no per-cell work at all;
//   * sums use the 2-D prefix plane for the fully covered interior and
//     prorate only boundary cells, in the same FP accumulation order as
//     the original row-major walk, so intervals stay bit-identical;
//   * levels build bottom-up — only the finest level scans the base
//     grid; coarser levels aggregate the next finer level when cell
//     sizes divide evenly (exact for min/max, FP-associative for sums).
//
// Thread-compatible for reads after Build().
class GridSynopsis {
 public:
  static Result<std::shared_ptr<GridSynopsis>> Build(
      const array::Grid& grid, GridSynopsisOptions options);

  GridSynopsis(const GridSynopsis&) = delete;
  GridSynopsis& operator=(const GridSynopsis&) = delete;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Bounds on individual cell values within the rectangle.
  Interval ValueBounds(int64_t r0, int64_t r1, int64_t c0,
                       int64_t c1) const;

  // Bounds on the sum over exactly the rectangle; fully covered synopsis
  // cells contribute exact sums, partially covered ones their overlap
  // area times [cell.min, cell.max].
  Interval SumBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval AvgBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  // Bounds on the max over exactly the rectangle; fully contained cells
  // witness their max from below.
  Interval MaxBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval MinBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval global_value_range() const { return global_range_; }
  int64_t MemoryBytes() const;
  // Summed over the per-thread shards; see ShardedCounter.
  int64_t queries_served() const { return queries_.Sum(); }

  // --- introspection (tests, benchmarks, tooling) ---

  // Read-only view of one level's row-major cell planes. Pointers stay
  // valid for the synopsis' lifetime. `prefix_sum` is
  // (cell_rows + 1) x (cell_cols + 1) with row stride cell_cols + 1:
  // prefix_sum[i * (cell_cols + 1) + j] = sum of cells in [0, i) x [0, j).
  struct LevelView {
    int64_t cell_size = 0;
    int64_t cell_rows = 0;
    int64_t cell_cols = 0;
    const double* min = nullptr;
    const double* max = nullptr;
    const double* sum = nullptr;
    const double* prefix_sum = nullptr;
  };

  size_t num_levels() const { return levels_.size(); }
  LevelView level_view(size_t index) const;

  // One level's share of MemoryBytes() (cell planes + sparse table).
  int64_t LevelMemoryBytes(size_t index) const;

  // Index (into level_view) of the level a query rectangle would use —
  // the finest level whose worst-case overlapped-cell estimate stays
  // within the per-query budget. Does not count as a served query. The
  // differential replica routes through this so both paths always answer
  // at the same level.
  size_t PickLevelIndex(int64_t r0, int64_t r1, int64_t c0,
                        int64_t c1) const;

 private:
  // Cells per sparse-table block edge: the table doubles over blocks of
  // kRmqBlock x kRmqBlock cells, costing (log rows)(log cols) /
  // kRmqBlock^2 of a plain 2-D sparse table's memory; the price is a
  // <= kRmqBlock - 1 cell fringe per side, answered by the per-row /
  // per-column 1-D tables below.
  static constexpr int64_t kRmqBlock = 4;

  struct Level {
    int64_t cell_size = 0;
    int64_t cell_rows = 0;
    int64_t cell_cols = 0;
    // log2(cell_size) when it is a power of two (the default and fuzz
    // configurations), -1 otherwise; lets the query path turn the
    // per-query cell-index divisions into shifts.
    int64_t cell_shift = -1;

    // Cell index of coordinate x along either dimension.
    int64_t Cell(int64_t x) const {
      return cell_shift >= 0 ? x >> cell_shift : x / cell_size;
    }

    // Structure-of-arrays cell planes, row-major (index i * cell_cols +
    // j); prefix_sum as documented on LevelView.
    std::vector<double> min;
    std::vector<double> max;
    std::vector<double> sum;
    std::vector<double> prefix_sum;

    // 2-D doubling sparse table over kRmqBlock x kRmqBlock blocks.
    // Entry (kr, kc, i, j) aggregates blocks [i, i + 2^kr) x
    // [j, j + 2^kc), min and max interleaved ({min, max} per entry at
    // index (((kr * rmq_rows_c + kc) * block_rows + i) * block_cols + j)
    // * 2). Power rows are built only up to the block span queries routed
    // to this level can produce. Entries whose window would run off the
    // end aggregate the clamped window — never read, but kept sound.
    int64_t block_rows = 0;
    int64_t block_cols = 0;
    int64_t rmq_rows_r = 0;  // doubling powers along the row dimension
    int64_t rmq_rows_c = 0;  // doubling powers along the column dimension
    std::vector<double> rmq;

    // 1-D doubling tables that make the block fringe and the
    // MaxBounds/MinBounds boundary strips O(1). rmq_row entry (k, i, j)
    // aggregates row i cells [j, j + 2^k) at index
    // ((k * cell_rows + i) * cell_cols + j) * 4; rmq_col entry (k, j, i)
    // aggregates column j cells [i, i + 2^k) at index
    // ((k * cell_cols + j) * cell_rows + i) * 4. Each entry holds four
    // aggregates over its range:
    //   [0] min of the min plane (rectangle lower bound)
    //   [1] max of the max plane (rectangle upper bound)
    //   [2] max of the min plane (MaxBounds overlap floor)
    //   [3] min of the max plane (MinBounds overlap ceiling)
    // Power rows are capped like `rmq`; entries whose window would run
    // off the end aggregate the clamped window — never read, but sound.
    int64_t rmq1_rows_r = 0;  // powers along rows (rmq_col table)
    int64_t rmq1_rows_c = 0;  // powers along columns (rmq_row table)
    std::vector<double> rmq_row;
    std::vector<double> rmq_col;

    double BlockSum(int64_t i0, int64_t i1, int64_t j0, int64_t j1) const;
  };

  GridSynopsis() = default;

  static void BuildLevelFromGrid(Level* level, const array::Grid& grid);
  static void BuildLevelFromFiner(Level* level, const Level& finer,
                                  int64_t rows, int64_t cols);
  void FinalizeLevel(Level* level, bool is_coarsest) const;

  // The two overlapping 1-D table entries covering row i cells [j0, j1]
  // (rmq_row) / column j cells [i0, i1] (rmq_col); see the entry layout
  // on Level. min/max are idempotent, so the overlap is harmless.
  static std::pair<const double*, const double*> RowEntries(
      const Level& level, int64_t i, int64_t j0, int64_t j1);
  static std::pair<const double*, const double*> ColEntries(
      const Level& level, int64_t j, int64_t i0, int64_t i1);

  // Exact min/max over the inclusive cell rectangle [i0, i1] x [j0, j1]
  // of a level: four corner sparse-table lookups for the full-block
  // interior plus two 1-D table lookups per fringe row/column. Small
  // rectangles (under two blocks in either dimension) go straight to the
  // 1-D tables along their shorter dimension.
  static void RectMinMax(const Level& level, int64_t i0, int64_t i1,
                         int64_t j0, int64_t j1, double* mn, double* mx);
  static double RectMin(const Level& level, int64_t i0, int64_t i1,
                        int64_t j0, int64_t j1);
  static double RectMax(const Level& level, int64_t i0, int64_t i1,
                        int64_t j0, int64_t j1);

  const Level& PickLevel(int64_t r0, int64_t r1, int64_t c0,
                         int64_t c1) const;

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t max_cells_per_query_ = 256;
  Interval global_range_ = Interval::Empty();
  std::vector<Level> levels_;
  mutable ShardedCounter queries_;
};

}  // namespace dqr::synopsis

#endif  // DQR_SYNOPSIS_GRID_SYNOPSIS_H_
