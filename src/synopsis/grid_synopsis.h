#ifndef DQR_SYNOPSIS_GRID_SYNOPSIS_H_
#define DQR_SYNOPSIS_GRID_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "array/grid.h"
#include "common/interval.h"
#include "common/sharded_counter.h"
#include "common/status.h"
#include "synopsis/synopsis.h"

namespace dqr::synopsis {

// Construction parameters for a two-dimensional multi-resolution
// synopsis: square cells, coarsest level first.
struct GridSynopsisOptions {
  std::vector<int64_t> cell_sizes = {512, 64, 16};
  // Budget on cells scanned per query; level selection picks the finest
  // level that stays within it.
  int64_t max_cells_per_query = 256;
};

// The 2-D counterpart of Synopsis: per-level grids of {min, max, sum}
// cells over an array::Grid, answering *sound* interval bounds for
// aggregates over arbitrary rectangles. Rectangles are half-open:
// rows [r0, r1) x cols [c0, c1).
class GridSynopsis {
 public:
  static Result<std::shared_ptr<GridSynopsis>> Build(
      const array::Grid& grid, GridSynopsisOptions options);

  GridSynopsis(const GridSynopsis&) = delete;
  GridSynopsis& operator=(const GridSynopsis&) = delete;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  // Bounds on individual cell values within the rectangle.
  Interval ValueBounds(int64_t r0, int64_t r1, int64_t c0,
                       int64_t c1) const;

  // Bounds on the sum over exactly the rectangle; fully covered synopsis
  // cells contribute exact sums, partially covered ones their overlap
  // area times [cell.min, cell.max].
  Interval SumBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval AvgBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  // Bounds on the max over exactly the rectangle; fully contained cells
  // witness their max from below.
  Interval MaxBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval MinBounds(int64_t r0, int64_t r1, int64_t c0, int64_t c1) const;

  Interval global_value_range() const { return global_range_; }
  int64_t MemoryBytes() const;
  // Summed over the per-thread shards; see ShardedCounter.
  int64_t queries_served() const { return queries_.Sum(); }

 private:
  struct Level {
    int64_t cell_size = 0;
    int64_t cell_rows = 0;
    int64_t cell_cols = 0;
    std::vector<SynopsisCell> cells;  // row-major
    // prefix[(i) * (cell_cols + 1) + j] = sum of cells in [0,i) x [0,j).
    std::vector<double> prefix_sum;

    const SynopsisCell& cell(int64_t i, int64_t j) const {
      return cells[static_cast<size_t>(i * cell_cols + j)];
    }
    double BlockSum(int64_t i0, int64_t i1, int64_t j0, int64_t j1) const;
  };

  GridSynopsis() = default;

  const Level& PickLevel(int64_t r0, int64_t r1, int64_t c0,
                         int64_t c1) const;

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t max_cells_per_query_ = 256;
  Interval global_range_ = Interval::Empty();
  std::vector<Level> levels_;
  mutable ShardedCounter queries_;
};

}  // namespace dqr::synopsis

#endif  // DQR_SYNOPSIS_GRID_SYNOPSIS_H_
