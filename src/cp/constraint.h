#ifndef DQR_CP_CONSTRAINT_H_
#define DQR_CP_CONSTRAINT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/interval.h"
#include "cp/domain.h"
#include "cp/function.h"

namespace dqr::cp {

// Verdict of checking a constraint against a sub-tree's domain box, based
// on the function's interval estimate.
enum class CheckStatus {
  // The estimate lies entirely within the bounds: every assignment in the
  // sub-tree satisfies the constraint (w.r.t. the synopsis).
  kSatisfied,
  // The estimate is disjoint from the bounds: no assignment can satisfy
  // the constraint; the sub-tree is pruned (a *fail*).
  kViolated,
  // The estimate straddles a bound; the search must descend.
  kUnknown,
};

struct CheckResult {
  CheckStatus status = CheckStatus::kUnknown;
  // The estimate [a', b'] used for the verdict; recorded at fails.
  Interval estimate = Interval::Empty();
};

// A range-based search constraint a <= f_c(X) <= b — the only constraint
// shape the refinement framework manipulates (§3). It carries two sets of
// bounds:
//   * original bounds: the user's query; penalties/ranks are always
//     computed against these;
//   * effective bounds: what the running search actually enforces — equal
//     to the originals in the main search, relaxed during fail replays.
class RangeConstraint {
 public:
  // `fn` must not be null. `bounds` may be half-open via +-infinity.
  RangeConstraint(std::unique_ptr<ConstraintFunction> fn, Interval bounds)
      : fn_(std::move(fn)),
        original_bounds_(bounds),
        effective_bounds_(bounds) {
    DQR_CHECK(fn_ != nullptr);
    DQR_CHECK(!bounds.empty());
  }

  const std::string name() const { return fn_->name(); }
  ConstraintFunction& function() { return *fn_; }
  const ConstraintFunction& function() const { return *fn_; }

  const Interval& original_bounds() const { return original_bounds_; }
  const Interval& effective_bounds() const { return effective_bounds_; }

  // Installs relaxed bounds for a replayed search. Must contain the
  // original bounds (relaxation only widens; checked).
  void SetEffectiveBounds(const Interval& bounds);

  // Restores effective == original (end of a replay).
  void ResetEffectiveBounds() { effective_bounds_ = original_bounds_; }

  bool IsRelaxed() const {
    return !(effective_bounds_ == original_bounds_);
  }

  // Checks the constraint over `box` using the function's estimate and the
  // *effective* bounds.
  CheckResult Check(const DomainBox& box);

  // Classifies an independently obtained estimate against the effective
  // bounds (used when replaying with restored intervals).
  CheckResult Classify(const Interval& estimate) const;

 private:
  std::unique_ptr<ConstraintFunction> fn_;
  Interval original_bounds_;
  Interval effective_bounds_;
};

}  // namespace dqr::cp

#endif  // DQR_CP_CONSTRAINT_H_
