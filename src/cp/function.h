#ifndef DQR_CP_FUNCTION_H_
#define DQR_CP_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "cp/domain.h"

namespace dqr::cp {

// Opaque, serializable computation state of a constraint function — the
// vehicle for the paper's "saving function states at fails" optimization
// (§4.2): e.g. the Max UDF's memoized window bounds with their support
// coordinates. Saved when a fail is recorded, restored before the fail is
// replayed, so the replayed search avoids recomputing estimates.
class FunctionState {
 public:
  virtual ~FunctionState() = default;

  // Deep copy, so a recorded fail owns its snapshot independently of the
  // live function.
  virtual std::unique_ptr<FunctionState> Clone() const = 0;

  // Approximate footprint, reported in engine stats (the paper quotes
  // ~80 bytes per saved aggregate state).
  virtual int64_t SizeBytes() const = 0;
};

// Counters for a constraint function's internal memo cache (e.g. the
// searchlight BoundsCache). Folded into RunStats per solver/validator
// thread so runs expose estimator-cache behaviour — in particular how
// often eviction had to make room during a snapshot Restore, the case the
// paper's §4.2 state-saving depends on never silently dropping.
struct FunctionMemoStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  // Cold entries evicted to make room for restored snapshot entries.
  int64_t restore_evictions = 0;
  // Cross-query shared memo (L2 behind the local cache): local misses that
  // the process-wide SharedBoundsMemo served / failed to serve, and
  // entries it evicted on this thread's publishes.
  int64_t shared_hits = 0;
  int64_t shared_misses = 0;
  int64_t shared_evictions = 0;

  FunctionMemoStats& operator+=(const FunctionMemoStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    restore_evictions += other.restore_evictions;
    shared_hits += other.shared_hits;
    shared_misses += other.shared_misses;
    shared_evictions += other.shared_evictions;
    return *this;
  }
};

// A constraint's black-box expression f_c(X): estimable over a whole
// sub-tree (via the synopsis) and exactly evaluable at a bound assignment
// (via the base array). Implementations live in src/searchlight; the CP
// layer only needs this contract.
//
// Concurrency: one instance is owned by one solver or validator thread;
// instances are never shared. Clone() produces an independent copy for
// another thread.
class ConstraintFunction {
 public:
  virtual ~ConstraintFunction() = default;

  virtual std::string name() const = 0;

  // Sound bounds on f over *every* assignment in `box`: the returned
  // interval must contain f(x) for all x in the box. This is the [a', b']
  // of §3/§4.1. May use internal memoization (hence non-const).
  virtual Interval Estimate(const DomainBox& box) = 0;

  // Exact value at a fully bound assignment, computed over the base data.
  // Used by the Validator; counts as (simulated) I/O.
  virtual double Evaluate(const std::vector<int64_t>& point) = 0;

  // Exact values at a batch of fully bound assignments:
  // out[i] = Evaluate(*points[i]), out must hold points.size() doubles.
  // The default loops Evaluate; implementations may override with a
  // vectorized kernel, but the values (and the simulated I/O charged per
  // point) must be identical to the one-at-a-time path — batching is an
  // optimization, never a semantic change.
  virtual void EvaluateBatch(
      const std::vector<const std::vector<int64_t>*>& points, double* out) {
    for (size_t i = 0; i < points.size(); ++i) out[i] = Evaluate(*points[i]);
  }

  // Static range of possible f values, derived from domain knowledge
  // (e.g. signal amplitudes lie in [50, 250]). Normalizes relaxation
  // distances and ranks, and acts as the hard relaxation limit (§3.1).
  virtual Interval value_range() const = 0;

  // Which synopsis resolution level Estimate would consult for the
  // degenerate box at `point` (the region a validated candidate came
  // from). Drives the profiler's per-level estimator-accuracy ledger;
  // -1 (the default) means "no level attribution" and folds into the
  // ledger's first slot. Must be side-effect free.
  virtual int EstimateLevel(const std::vector<int64_t>& point) const {
    (void)point;
    return -1;
  }

  // Independent copy for another thread (shares only immutable inputs
  // such as the array and synopsis).
  virtual std::unique_ptr<ConstraintFunction> Clone() const = 0;

  // --- Optional UDF-state hooks (§4.2 "Saving function states") -------

  // Snapshot of the reusable computation state relevant to `box` (e.g.
  // memoized window bounds with support coordinates inside the box's
  // span); nullptr if the function keeps none (the default). Saved when a
  // fail at `box` is recorded.
  virtual std::unique_ptr<FunctionState> SaveState(
      const DomainBox& box) const {
    (void)box;
    return nullptr;
  }

  // Merges a previously saved snapshot back into the live function;
  // called just before the corresponding fail is replayed.
  virtual void RestoreState(const FunctionState& state) { (void)state; }

  // Drops any per-search computation state. The engine calls this between
  // searches (main search, each replay), mirroring the solver-state reset
  // of the modelled system; RestoreState then selectively re-seeds it.
  virtual void ClearState() {}

  // Cumulative memo-cache counters since construction; zeroes for
  // functions without a cache (the default).
  virtual FunctionMemoStats memo_stats() const { return {}; }
};

}  // namespace dqr::cp

#endif  // DQR_CP_FUNCTION_H_
