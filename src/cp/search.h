#ifndef DQR_CP_SEARCH_H_
#define DQR_CP_SEARCH_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "cp/constraint.h"
#include "cp/domain.h"

namespace dqr::cp {

// Everything the refinement framework needs to replay a pruned node later:
// the node's domains plus the constraint estimates observed there (§4.1
// "fail recording"). With fail-fast checking (the lazy optimization of
// §4.2) some estimates may be unevaluated.
struct FailInfo {
  DomainBox box;
  // estimates[i] is constraint i's [a', b'] at this node; meaningful only
  // where evaluated[i] is true.
  std::vector<Interval> estimates;
  std::vector<char> evaluated;
  // Indices of constraints whose estimate was disjoint from their
  // (effective) bounds at this node.
  std::vector<int> violated;
  int depth = 0;
};

// Receives search events. The refinement framework implements this to
// record fails, stream leaf candidates to the Validator, and install
// dynamic pruning constraints.
class SearchListener {
 public:
  virtual ~SearchListener() = default;

  // A node failed (>= 1 violated constraint). The sub-tree is pruned.
  virtual void OnFail(FailInfo info) { (void)info; }

  // Called on every non-failed node after constraint checks, before
  // branching/leaf handling. Return false to prune the sub-tree without a
  // fail — the hook for *dynamic* constraints (BRK >= MRK, custom RP
  // checks). `estimates` holds the per-constraint estimates at this node.
  virtual bool OnNode(const DomainBox& box,
                      const std::vector<Interval>& estimates) {
    (void)box;
    (void)estimates;
    return true;
  }

  // A fully bound, non-failed leaf: a candidate solution (possibly a false
  // positive w.r.t. the base data).
  virtual void OnSolution(const std::vector<int64_t>& point,
                          const std::vector<Interval>& estimates) = 0;
};

// Variable-selection heuristic: which unbound variable to branch on.
// The paper notes Searchlight's decision process "is tunable, can be
// selected and modified by the user".
enum class VarSelect {
  kWidestDomain,    // largest remaining domain (default)
  kFirstUnbound,    // lowest-index unbound variable
  kSmallestDomain,  // smallest non-singleton domain (fail-first)
};

// Value-splitting heuristic: which half of the chosen domain to explore
// first.
enum class ValueSplit {
  kBisectLowFirst,   // explore [lo, mid] before [mid+1, hi] (default)
  kBisectHighFirst,  // explore [mid+1, hi] before [lo, mid]
};

struct SearchOptions {
  // Stop checking constraints at the first violated one. Leaves later
  // estimates unevaluated in FailInfo — the "lazy" fail recording of §4.2.
  // With false, every constraint is estimated at every fail ("Full").
  bool fail_fast = true;

  // Search heuristics; every combination visits the same solution set
  // (the search is complete), only the exploration order and tree shape
  // differ.
  VarSelect var_select = VarSelect::kWidestDomain;
  ValueSplit value_split = ValueSplit::kBisectLowFirst;

  // Cooperative cancellation (speculation shutdown, bench timeouts);
  // checked at every node. May be null.
  const std::atomic<bool>* cancel = nullptr;

  // Node budget; 0 = unlimited. The search stops (incomplete) beyond it.
  int64_t max_nodes = 0;
};

struct SearchStats {
  int64_t nodes = 0;
  int64_t fails = 0;
  int64_t leaves = 0;
  int64_t monitor_prunes = 0;
  // False iff the search was cancelled or hit max_nodes.
  bool completed = true;

  SearchStats& operator+=(const SearchStats& o) {
    nodes += o.nodes;
    fails += o.fails;
    leaves += o.leaves;
    monitor_prunes += o.monitor_prunes;
    completed = completed && o.completed;
    return *this;
  }
};

// Backtracking interval-splitting search over a set of RangeConstraints —
// the Searchlight Solver's engine. Builds the tree depth-first: at each
// node all constraints are checked against synopsis estimates; violated
// nodes fail (and are reported for possible later replay); fully bound
// non-failed leaves are emitted as candidates.
//
// A SearchTree is single-use and single-threaded; replays construct fresh
// trees rooted at recorded fail boxes.
class SearchTree {
 public:
  // `constraints` are borrowed and must outlive the search; `listener`
  // likewise. The same constraint objects can be reused across successive
  // trees (main search, then replays) — their effective bounds carry the
  // per-replay relaxation.
  SearchTree(DomainBox root, std::vector<RangeConstraint*> constraints,
             SearchListener* listener, SearchOptions options);

  // Runs the depth-first search to exhaustion (or cancellation).
  SearchStats Run();

 private:
  struct Node {
    DomainBox box;
    int depth = 0;
  };

  // Returns the index of the branching variable per the configured
  // heuristic, or -1 if all bound.
  int PickVariable(const DomainBox& box) const;

  DomainBox root_;
  std::vector<RangeConstraint*> constraints_;
  SearchListener* listener_;
  SearchOptions options_;
};

}  // namespace dqr::cp

#endif  // DQR_CP_SEARCH_H_
