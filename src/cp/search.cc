#include "cp/search.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dqr::cp {

SearchTree::SearchTree(DomainBox root,
                       std::vector<RangeConstraint*> constraints,
                       SearchListener* listener, SearchOptions options)
    : root_(std::move(root)),
      constraints_(std::move(constraints)),
      listener_(listener),
      options_(options) {
  DQR_CHECK(listener_ != nullptr);
  for (const RangeConstraint* c : constraints_) DQR_CHECK(c != nullptr);
  for (const IntDomain& d : root_) DQR_CHECK(!d.empty());
}

int SearchTree::PickVariable(const DomainBox& box) const {
  int best = -1;
  switch (options_.var_select) {
    case VarSelect::kWidestDomain: {
      int64_t best_size = 1;
      for (size_t i = 0; i < box.size(); ++i) {
        if (box[i].size() > best_size) {
          best_size = box[i].size();
          best = static_cast<int>(i);
        }
      }
      break;
    }
    case VarSelect::kFirstUnbound: {
      for (size_t i = 0; i < box.size(); ++i) {
        if (!box[i].IsBound()) return static_cast<int>(i);
      }
      break;
    }
    case VarSelect::kSmallestDomain: {
      int64_t best_size = INT64_MAX;
      for (size_t i = 0; i < box.size(); ++i) {
        if (!box[i].IsBound() && box[i].size() < best_size) {
          best_size = box[i].size();
          best = static_cast<int>(i);
        }
      }
      break;
    }
  }
  return best;
}

SearchStats SearchTree::Run() {
  SearchStats stats;
  const size_t nc = constraints_.size();

  std::vector<Node> stack;
  stack.push_back(Node{root_, 0});

  std::vector<Interval> estimates(nc, Interval::Empty());
  std::vector<char> evaluated(nc, 0);

  while (!stack.empty()) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      stats.completed = false;
      break;
    }
    if (options_.max_nodes > 0 && stats.nodes >= options_.max_nodes) {
      stats.completed = false;
      break;
    }

    Node node = std::move(stack.back());
    stack.pop_back();
    ++stats.nodes;

    // Check every constraint against the synopsis estimate for this box.
    std::fill(evaluated.begin(), evaluated.end(), 0);
    std::vector<int> violated;
    for (size_t i = 0; i < nc; ++i) {
      const CheckResult result = constraints_[i]->Check(node.box);
      estimates[i] = result.estimate;
      evaluated[i] = 1;
      if (result.status == CheckStatus::kViolated) {
        violated.push_back(static_cast<int>(i));
        if (options_.fail_fast) break;
      }
    }

    if (!violated.empty()) {
      ++stats.fails;
      FailInfo info;
      info.box = std::move(node.box);
      info.estimates = estimates;
      info.evaluated = evaluated;
      info.violated = std::move(violated);
      info.depth = node.depth;
      listener_->OnFail(std::move(info));
      continue;
    }

    if (!listener_->OnNode(node.box, estimates)) {
      ++stats.monitor_prunes;
      continue;
    }

    const int var = PickVariable(node.box);
    if (var < 0) {
      ++stats.leaves;
      listener_->OnSolution(BoundPoint(node.box), estimates);
      continue;
    }

    // Branch: split the chosen domain at its midpoint. The half to
    // explore first is pushed last (DFS stack).
    const IntDomain d = node.box[static_cast<size_t>(var)];
    const int64_t mid = d.lo + (d.hi - d.lo) / 2;
    const bool low_first =
        options_.value_split == ValueSplit::kBisectLowFirst;

    Node second;
    second.box = node.box;
    second.box[static_cast<size_t>(var)] =
        low_first ? IntDomain(mid + 1, d.hi) : IntDomain(d.lo, mid);
    second.depth = node.depth + 1;
    stack.push_back(std::move(second));

    Node first;
    first.box = std::move(node.box);
    first.box[static_cast<size_t>(var)] =
        low_first ? IntDomain(d.lo, mid) : IntDomain(mid + 1, d.hi);
    first.depth = node.depth + 1;
    stack.push_back(std::move(first));
  }

  return stats;
}

}  // namespace dqr::cp
