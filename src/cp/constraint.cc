#include "cp/constraint.h"

namespace dqr::cp {

void RangeConstraint::SetEffectiveBounds(const Interval& bounds) {
  DQR_CHECK_MSG(bounds.Contains(original_bounds_),
                "relaxed bounds must contain the original bounds");
  effective_bounds_ = bounds;
}

CheckResult RangeConstraint::Check(const DomainBox& box) {
  return Classify(fn_->Estimate(box));
}

CheckResult RangeConstraint::Classify(const Interval& estimate) const {
  CheckResult result;
  result.estimate = estimate;
  DQR_CHECK_MSG(!estimate.empty(), "constraint estimate must be non-empty");
  if (effective_bounds_.Contains(estimate)) {
    result.status = CheckStatus::kSatisfied;
  } else if (!effective_bounds_.Intersects(estimate)) {
    result.status = CheckStatus::kViolated;
  } else {
    result.status = CheckStatus::kUnknown;
  }
  return result;
}

}  // namespace dqr::cp
