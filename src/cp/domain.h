#ifndef DQR_CP_DOMAIN_H_
#define DQR_CP_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace dqr::cp {

// The integer interval domain of one decision variable: all values in
// [lo, hi]. Interval domains (rather than bitsets) are what Searchlight's
// splitting search manipulates, and they make search-state snapshots for
// fail replaying O(#vars).
struct IntDomain {
  int64_t lo = 0;
  int64_t hi = -1;  // default-constructed domain is empty

  IntDomain() = default;
  IntDomain(int64_t lo_in, int64_t hi_in) : lo(lo_in), hi(hi_in) {}

  bool empty() const { return lo > hi; }
  int64_t size() const { return empty() ? 0 : hi - lo + 1; }
  bool IsBound() const { return lo == hi; }

  // Value of a bound domain; checks the invariant.
  int64_t value() const {
    DQR_CHECK(IsBound());
    return lo;
  }

  bool Contains(int64_t v) const { return lo <= v && v <= hi; }

  std::string ToString() const {
    if (empty()) return "{}";
    std::string out;
    out.reserve(32);
    if (IsBound()) {
      out += '{';
      out += std::to_string(lo);
      out += '}';
      return out;
    }
    out += '[';
    out += std::to_string(lo);
    out += "..";
    out += std::to_string(hi);
    out += ']';
    return out;
  }

  friend bool operator==(const IntDomain& a, const IntDomain& b) {
    return (a.empty() && b.empty()) || (a.lo == b.lo && a.hi == b.hi);
  }
};

// The search state of all decision variables at one search-tree node;
// element i is variable i's current domain. This is exactly what a fail
// record snapshots ("current decision variable domains", §4.1).
using DomainBox = std::vector<IntDomain>;

// True iff every variable is bound (the node is a leaf).
inline bool IsBound(const DomainBox& box) {
  for (const IntDomain& d : box) {
    if (!d.IsBound()) return false;
  }
  return true;
}

// Extracts the assignment from a fully bound box.
inline std::vector<int64_t> BoundPoint(const DomainBox& box) {
  std::vector<int64_t> point;
  point.reserve(box.size());
  for (const IntDomain& d : box) point.push_back(d.value());
  return point;
}

// Number of assignments in the box (product of domain sizes); saturates at
// INT64_MAX. Used for stats and brute-force guards in tests.
inline int64_t BoxCardinality(const DomainBox& box) {
  int64_t card = 1;
  for (const IntDomain& d : box) {
    if (d.empty()) return 0;
    if (card > (INT64_MAX / d.size())) return INT64_MAX;
    card *= d.size();
  }
  return card;
}

inline std::string ToString(const DomainBox& box) {
  std::string out = "(";
  for (size_t i = 0; i < box.size(); ++i) {
    if (i > 0) out += ", ";
    out += box[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dqr::cp

#endif  // DQR_CP_DOMAIN_H_
